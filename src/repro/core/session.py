"""Multi-query measurement sessions: BER and throughput over time.

The paper's experiments run the tag for one minute at a time (§6.2: "In
each measurement, the tag sends data for one minute"), comparing decoded
bits against the expected pattern to measure BER, and counting bits sent
successfully per second for throughput.  This module is that methodology
as code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..seeding import component_rng
from .config import EncryptionMode
from .system import QueryResult, WiTagSystem
from .throughput import block_ack_airtime_s

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..runner.engine import SweepResult, UnitContext

Bits = list[int]


@dataclass(frozen=True)
class SessionStats:
    """Aggregate results of a measurement session.

    Attributes:
        bits_sent: total tag bits attempted.
        bit_errors: received bits differing from sent bits.
        elapsed_s: simulated wall-clock time consumed by all cycles.
        queries: number of query cycles run.
        missed_triggers: cycles in which the tag failed to detect the
            query (no bits transferred; time still consumed).
    """

    bits_sent: int
    bit_errors: int
    elapsed_s: float
    queries: int
    missed_triggers: int

    @property
    def ber(self) -> float:
        """Bit error rate (0 when no bits were sent)."""
        return self.bit_errors / self.bits_sent if self.bits_sent else 0.0

    @property
    def throughput_bps(self) -> float:
        """Bits successfully delivered per second (paper §6.2)."""
        if self.elapsed_s <= 0:
            return 0.0
        return (self.bits_sent - self.bit_errors) / self.elapsed_s

    @property
    def goodput_bps(self) -> float:
        """Alias of :attr:`throughput_bps` (naming used in some plots)."""
        return self.throughput_bps


@dataclass
class MeasurementSession:
    """Runs a WiTAG system for a simulated duration with random tag data.

    Attributes:
        system: the deployment under test.
        rng: source for the random data bits the tag transmits.
        session_fast_path: route whole chunks of query cycles through
            the batched session engine
            (:meth:`WiTagSystem.run_queries_batch`) instead of the
            scalar per-query loop.  Each simulation component owns its
            generator and the batch engine consumes every stream in
            scalar order, so results are bitwise identical to the
            scalar loop for any chunk size (see the determinism
            contract on ``run_queries_batch``); the scalar loop remains
            the reference and is kept for verification.
        batch_queries: chunk size for the batch engine.  Bounds the
            transient numpy working set (a few hundred queries of 64
            subframes x 52 subcarriers of complex matrices is tens of
            MB); has no effect on results.
    """

    system: WiTagSystem
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("session")
    )
    results: list[QueryResult] = field(default_factory=list)
    session_fast_path: bool = True
    batch_queries: int = 256

    def run_for(self, duration_s: float) -> SessionStats:
        """Run query cycles until ``duration_s`` of simulated time passes.

        The batched engine needs the query count up front, so the fast
        path only engages when the cycle duration is deterministic (no
        CSMA contention, unencrypted queries): it then replays the
        scalar loop's float accumulation on the predicted constant
        cycle duration to find the exact count the scalar loop would
        run, and batches that.  Otherwise the scalar reference loop
        runs unchanged.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.session_fast_path:
            cycle_s = self._predicted_cycle_s()
            if cycle_s is not None:
                count = 0
                elapsed = 0.0
                while elapsed < duration_s:
                    elapsed += cycle_s
                    count += 1
                return self._finish(self.stats(self._run_batch(count)))
        elapsed = 0.0
        while elapsed < duration_s:
            elapsed += self._one_cycle()
        return self._finish(self.stats(elapsed))

    def run_queries(self, count: int) -> SessionStats:
        """Run a fixed number of query cycles."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if self.session_fast_path:
            return self._finish(self.stats(self._run_batch(count)))
        elapsed = 0.0
        for _ in range(count):
            elapsed += self._one_cycle()
        return self._finish(self.stats(elapsed))

    def _finish(self, stats: SessionStats) -> SessionStats:
        """Emit the end-of-run session telemetry record, if attached."""
        telemetry = self.system.telemetry
        if telemetry is not None:
            telemetry.on_session(stats, self.stage_timings())
        return stats

    def _one_cycle(self) -> float:
        self._ensure_tag_bits()
        result = self.system.run_query()
        self.results.append(result)
        return result.cycle_s

    def _ensure_tag_bits(self) -> None:
        """Top up the tag's queue for one query (scalar draw order)."""
        bits_needed = self.system.config.bits_per_query
        if self.system.tag.pending_bits < bits_needed:
            fresh = self.rng.integers(0, 2, size=bits_needed).tolist()
            self.system.load_tag_bits([int(b) for b in fresh])

    def _run_batch(self, count: int) -> float:
        """Run ``count`` cycles through the batch engine, in chunks.

        Returns the elapsed simulated time accumulated in the scalar
        loop's order (one float add per query), so the value is bitwise
        equal to the scalar loop's ``elapsed``.
        """
        if self.batch_queries < 1:
            raise ValueError(
                f"batch_queries must be >= 1, got {self.batch_queries}"
            )
        elapsed = 0.0
        remaining = count
        while remaining > 0:
            chunk = min(remaining, self.batch_queries)
            for result in self.system.run_queries_batch(
                chunk, load_bits=self._ensure_tag_bits
            ):
                self.results.append(result)
                elapsed += result.cycle_s
            remaining -= chunk
        return elapsed

    def _predicted_cycle_s(self) -> float | None:
        """The constant per-cycle duration, or None if not predictable.

        Cycle duration is access delay + query airtime + SIFS + block
        ACK airtime.  Without contention the access delay is a
        deterministic constant, and unencrypted queries all share one
        frozen airtime schedule — so every cycle of the session has the
        exact same duration.  Contention draws random backoffs and
        encrypted builds cannot be peeked without consuming CCMP packet
        numbers / WEP IVs; both fall back to the scalar loop.
        """
        system = self.system
        if system.contention is not None:
            return None
        if system.config.encryption is not EncryptionMode.OPEN:
            return None
        airtime_s = system.builder.peek_airtime_s()
        return (
            system._access_delay_s()
            + airtime_s
            + system.config.band.sifs_s
            + block_ack_airtime_s()
        )

    def stats(self, elapsed_s: float | None = None) -> SessionStats:
        """Aggregate statistics over all cycles run so far."""
        if elapsed_s is None:
            elapsed_s = sum(r.cycle_s for r in self.results)
        bits = sum(r.n_bits for r in self.results)
        errors = sum(r.bit_errors for r in self.results)
        missed = sum(1 for r in self.results if not r.detected)
        return SessionStats(
            bits_sent=bits,
            bit_errors=errors,
            elapsed_s=elapsed_s,
            queries=len(self.results),
            missed_triggers=missed,
        )

    def per_query_ber(self) -> list[float]:
        """BER of each individual query (for CDF experiments)."""
        return [
            r.bit_errors / r.n_bits for r in self.results if r.n_bits > 0
        ]

    def stage_timings(self) -> dict[str, dict[str, dict[str, float]]]:
        """Cumulative per-stage wall-clock spent by this session's system.

        Groups the system-level query-cycle counters and the error
        model's vectorized-decode counters (see :mod:`repro.perf`); the
        ``repro bench`` CLI renders exactly this structure.
        """
        return {
            "system": self.system.counters.as_dict(),
            "error_model": self.system.error_model.counters.as_dict(),
        }


#: Dedup keys for which the small-query serial-fallback warning already
#: fired in this process.  A retried or checkpoint-resumed job calls
#: :func:`run_parallel_sessions` once per (re)dispatch with the same
#: configuration; warning on every one of them buried real signal, so
#: the fallback now warns once per key and stays silent after.
_small_query_warned: set = set()


def reset_small_query_warnings() -> None:
    """Forget which callers already saw the small-query fallback warning.

    Test hook: the dedup set is process-global, so suites asserting the
    warning fires (or fires exactly once) reset it first to stay
    independent of execution order.
    """
    _small_query_warned.clear()


def run_parallel_sessions(
    build: "Callable[[UnitContext], MeasurementSession]",
    n_sessions: int,
    *,
    queries: int | None = None,
    duration_s: float | None = None,
    seed: int = 0,
    n_workers: int = 1,
    warn_key: "object | None" = None,
    **engine_kwargs,
) -> "SweepResult":
    """Run independent sessions through the parallel engine.

    Thin forwarding wrapper around :func:`repro.runner.run_sessions`
    (imported lazily — the runner builds on this module) so session
    consumers get parallel execution without importing the runner
    package themselves.  ``result.values`` is a list of
    :class:`SessionStats`, one per session, in session order and
    bit-identical for any ``n_workers``.

    When the per-session query count is smaller than the requested
    chunk size, process-pool dispatch would cost more than the work
    itself; matching ``run_units`` behaviour, this falls back to the
    serial executor with a warning instead of raising.  The warning is
    deduplicated per ``warn_key`` (defaulting to the
    ``(queries, chunk_size)`` pair) so a job that re-dispatches the
    same configuration — a retry loop, a checkpoint resume, a job
    server re-running a spec — warns once, not once per dispatch; the
    serial fallback itself still applies every time.
    """
    from ..runner import run_sessions

    chunk_size = engine_kwargs.get("chunk_size")
    if (
        queries is not None
        and chunk_size is not None
        and queries < chunk_size
    ):
        key = warn_key if warn_key is not None else (queries, chunk_size)
        if key not in _small_query_warned:
            _small_query_warned.add(key)
            warnings.warn(
                f"n_queries ({queries}) < chunk_size ({chunk_size}): "
                "parallel dispatch would dominate the work; falling back "
                "to the serial executor",
                RuntimeWarning,
                stacklevel=2,
            )
        engine_kwargs = dict(engine_kwargs, executor="serial")

    return run_sessions(
        build,
        n_sessions,
        queries=queries,
        duration_s=duration_s,
        seed=seed,
        n_workers=n_workers,
        **engine_kwargs,
    )
