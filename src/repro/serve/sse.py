"""Server-Sent Events framing (a WHATWG-conformant subset).

The service streams job progress as ``text/event-stream``:

.. code-block:: text

    id: 3
    event: chunk
    data: {"chunk_index": 2, ...}

    id: 4
    event: state
    data: {"state": "completed", "error": null}

    event: done
    data: {}

Each frame carries the job-local event id, so a client that reconnects
with ``Last-Event-ID`` (or ``?after=N``) replays exactly the events it
missed.  :func:`parse_events` is the inverse used by the test harness —
framing correctness is pinned down as ``parse(format(e)) == e``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = ["SSEvent", "format_event", "parse_events"]


@dataclass(frozen=True)
class SSEvent:
    """One parsed SSE frame."""

    event: str
    data: dict[str, Any]
    id: int | None = None


def format_event(
    event: str, data: dict[str, Any], *, id: int | None = None
) -> bytes:
    """Render one SSE frame (trailing blank line included)."""
    lines = []
    if id is not None:
        lines.append(f"id: {id}")
    lines.append(f"event: {event}")
    payload = json.dumps(data, separators=(",", ":"), sort_keys=True)
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_events(stream: bytes) -> list[SSEvent]:
    """Parse a ``text/event-stream`` body back into events.

    Tolerates the optional ``\\r`` line endings the spec allows and
    ignores comment lines (``:`` prefix) and unknown fields, which is
    exactly what a browser ``EventSource`` does.
    """
    events: list[SSEvent] = []
    event_name = "message"
    event_id: int | None = None
    data_lines: list[str] = []
    text = stream.decode("utf-8")
    for raw in text.split("\n"):
        line = raw.rstrip("\r")
        if not line:
            if data_lines:
                events.append(
                    SSEvent(
                        event=event_name,
                        data=json.loads("\n".join(data_lines)),
                        id=event_id,
                    )
                )
            event_name = "message"
            event_id = None
            data_lines = []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "event":
            event_name = value
        elif field == "data":
            data_lines.append(value)
        elif field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
    if data_lines:
        events.append(
            SSEvent(
                event=event_name,
                data=json.loads("\n".join(data_lines)),
                id=event_id,
            )
        )
    return events
