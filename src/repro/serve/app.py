"""The asyncio HTTP front end of the sweep job service.

Stdlib-only by design: a small HTTP/1.1 request parser over asyncio
streams, a route table, and SSE streaming — no web framework, which
keeps the service importable everywhere the simulator is (the ISSUE's
no-new-dependencies constraint).  Each connection serves exactly one
request (``Connection: close``), which sidesteps keep-alive parsing
while costing nothing at the request rates a sweep service sees.

Endpoints (see ``docs/service.md`` for the full contract):

=======  =======================  ==========================================
Method   Path                     Meaning
=======  =======================  ==========================================
POST     /jobs                    submit a job (JSON body -> 202 + summary)
GET      /jobs                    list job summaries
GET      /jobs/{id}               one job's summary
GET      /jobs/{id}/result        completed job's result payload
GET      /jobs/{id}/events        live SSE stream of the job's events
DELETE   /jobs/{id}               cancel an active job / delete a terminal one
GET      /metrics                 Prometheus text exposition
GET      /metrics?format=json     metrics registry snapshot as JSON
GET      /healthz                 liveness + store census
GET      /dash                    self-contained live HTML dashboard
=======  =======================  ==========================================
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..obs.serve import ServerMetrics
from .dash import DASHBOARD_HTML
from .jobs import (
    TERMINAL_STATES,
    ExecutorPool,
    JobNotFound,
    JobQueue,
    JobStateError,
    JobStore,
    JobStoreFull,
)
from .schema import SchemaError, job_request_from_json
from .sse import format_event

__all__ = ["ServeConfig", "SweepService"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Upper bound on request bodies; a sweep spec is tiny, so anything
#: bigger is a client bug, not a bigger sweep.
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Configuration for one :class:`SweepService`.

    Attributes:
        host: interface to bind.
        port: TCP port (0 lets the OS pick; see ``SweepService.port``).
        slots: executor slots = jobs running concurrently.
        spill_dir: directory for job sidecars + engine checkpoints;
            ``None`` runs ephemeral (no durability, no resume).
        max_jobs: cap on non-terminal jobs in the store.
        transport: chunk payload codec for job execution (``"auto"`` /
            ``"pickle"`` / ``"shm"``; see :mod:`repro.runner.transport`).
        warm_workers: per-slot persistent warm-pool size; 0 (default)
            keeps the classic per-job executors.  See
            :class:`repro.serve.jobs.ExecutorPool`.
    """

    host: str = "127.0.0.1"
    port: int = 0
    slots: int = 2
    spill_dir: str | None = None
    max_jobs: int = 1024
    transport: str = "auto"
    warm_workers: int = 0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if not (0 <= self.port <= 65535):
            raise ValueError("port must be in [0, 65535]")
        if self.warm_workers < 0:
            raise ValueError("warm_workers must be >= 0")
        if self.transport not in ("auto", "pickle", "shm"):
            raise ValueError(
                f"transport must be auto/pickle/shm, got {self.transport!r}"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "slots": self.slots,
            "spill_dir": self.spill_dir,
            "max_jobs": self.max_jobs,
            "transport": self.transport,
            "warm_workers": self.warm_workers,
        }


class _HttpError(Exception):
    """Internal: unwinds request handling into an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SweepService:
    """One job server: store + queue + executor pool + HTTP listener.

    Usable two ways: ``await service.start()`` / ``await
    service.stop()`` from an existing loop (tests boot it in-process on
    port 0), or ``service.run_forever()`` from the ``repro serve`` CLI.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServerMetrics()
        self.store = JobStore(
            self.config.spill_dir,
            metrics=self.metrics,
            max_jobs=self.config.max_jobs,
        )
        self.queue = JobQueue()
        self.pool = ExecutorPool(
            self.store,
            self.queue,
            slots=self.config.slots,
            metrics=self.metrics,
            transport=self.config.transport,
            warm_workers=self.config.warm_workers,
        )
        self._server: asyncio.Server | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after ``start``)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Recover persisted jobs, start the pool, bind the listener."""
        for job in self.store.load_jobs():
            await self.queue.put(job)
        self.metrics.set_queue_depth(self.queue.depth)
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.pool.stop()

    def run_forever(self) -> None:
        """Blocking entry point for the CLI (Ctrl-C stops cleanly)."""

        async def _main() -> None:
            await self.start()
            assert self._server is not None
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        asyncio.run(_main())

    # -- request plumbing -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(
                    reader
                )
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, {"error": error.message}
                )
                return
            try:
                await self._route(
                    writer, method, path, headers, body
                )
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, {"error": error.message}
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                raise
            except Exception as error:  # noqa: BLE001 - last resort
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes]:
        request_line = (await reader.readline()).decode(
            "latin-1"
        ).rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _ = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip(
                "\r\n"
            )
            if not line:
                break
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(
                400, f"bad Content-Length: {length_text!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any] | list[Any],
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._send_response(
            writer, status, "application/json", body
        )

    # -- routing ----------------------------------------------------------

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        segments = [s for s in path.split("/") if s]

        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {
                    "ok": True,
                    "version": __version__,
                    "slots": self.config.slots,
                    "queue_depth": self.queue.depth,
                    "jobs": self.store.census(),
                },
            )
            return
        if path == "/metrics" and method == "GET":
            fmt = query.get("format", ["prometheus"])[-1]
            if fmt == "json":
                await self._send_json(writer, 200, self.metrics.snapshot())
                return
            if fmt != "prometheus":
                raise _HttpError(400, f"unknown metrics format: {fmt!r}")
            await self._send_response(
                writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.metrics.render_prometheus().encode("utf-8"),
            )
            return
        if path == "/dash" and method == "GET":
            await self._send_response(
                writer,
                200,
                "text/html; charset=utf-8",
                DASHBOARD_HTML.encode("utf-8"),
            )
            return
        if path == "/jobs":
            if method == "POST":
                await self._post_job(writer, body)
                return
            if method == "GET":
                jobs = await self.store.list_jobs()
                await self._send_json(
                    writer, 200, [job.summary() for job in jobs]
                )
                return
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(segments) >= 2 and segments[0] == "jobs":
            job_id = segments[1]
            tail = segments[2:]
            if not tail:
                if method == "GET":
                    await self._get_job(writer, job_id)
                    return
                if method == "DELETE":
                    await self._delete_job(writer, job_id)
                    return
                raise _HttpError(
                    405, f"{method} not allowed on /jobs/{{id}}"
                )
            if tail == ["result"] and method == "GET":
                await self._get_result(writer, job_id)
                return
            if tail == ["events"] and method == "GET":
                await self._stream_events(
                    writer, job_id, headers, query
                )
                return
        raise _HttpError(404, f"no route for {method} {path}")

    # -- handlers ---------------------------------------------------------

    async def _post_job(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"body is not JSON: {error}") from None
        try:
            request = job_request_from_json(payload)
        except SchemaError as error:
            raise _HttpError(400, str(error)) from None
        try:
            job = await self.store.submit(request)
        except JobStoreFull as error:
            raise _HttpError(429, str(error)) from None
        await self.queue.put(job)
        self.metrics.set_queue_depth(self.queue.depth)
        await self._send_json(writer, 202, job.summary())

    async def _get_job(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        try:
            job = await self.store.get(job_id)
        except JobNotFound:
            raise _HttpError(404, f"no such job: {job_id}") from None
        await self._send_json(writer, 200, job.summary())

    async def _get_result(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        try:
            job = await self.store.get(job_id)
        except JobNotFound:
            raise _HttpError(404, f"no such job: {job_id}") from None
        if job.state != "completed" or job.result is None:
            raise _HttpError(
                409, f"job {job_id} is {job.state}; no result yet"
            )
        await self._send_json(writer, 200, job.result)

    async def _delete_job(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        try:
            job = await self.store.get(job_id)
        except JobNotFound:
            raise _HttpError(404, f"no such job: {job_id}") from None
        try:
            if job.state in TERMINAL_STATES:
                await self.store.delete(job_id)
                await self._send_json(
                    writer, 200, {"id": job_id, "deleted": True}
                )
            else:
                job = await self.store.cancel(job_id)
                await self.queue.remove(job_id)
                self.metrics.set_queue_depth(self.queue.depth)
                await self._send_json(writer, 202, job.summary())
        except JobStateError as error:
            raise _HttpError(409, str(error)) from None

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        headers: dict[str, str],
        query: dict[str, list[str]],
    ) -> None:
        try:
            await self.store.get(job_id)
        except JobNotFound:
            raise _HttpError(404, f"no such job: {job_id}") from None
        after = 0
        last_id = headers.get("last-event-id")
        if last_id is not None:
            try:
                after = int(last_id)
            except ValueError:
                raise _HttpError(
                    400, f"bad Last-Event-ID: {last_id!r}"
                ) from None
        if "after" in query:
            try:
                after = int(query["after"][-1])
            except ValueError:
                raise _HttpError(
                    400, f"bad after= value: {query['after'][-1]!r}"
                ) from None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for event in self.store.subscribe(job_id, after):
            writer.write(
                format_event(event.event, event.data, id=event.id)
            )
            self.metrics.event_streamed()
            await writer.drain()
        writer.write(format_event("done", {}))
        self.metrics.event_streamed()
        await writer.drain()
