"""Async sweep job service: HTTP job submission, SSE progress, resume.

``repro serve`` turns the deterministic sweep engine into a
long-running service.  Clients POST :class:`~repro.serve.schema.JobRequest`
JSON bodies describing a :class:`~repro.runner.SweepSpec` or
:class:`~repro.runner.SessionSpec` job; a priority queue feeds an
executor pool that runs each job through the unchanged engine
(checkpoints, retries, fault tolerance included), and clients follow
progress live over Server-Sent Events.  Results served over HTTP are
bit-identical to a direct :func:`repro.runner.run_sweep` call with the
same spec and seed — the service adds scheduling and transport, never
arithmetic.

See ``docs/service.md`` for the HTTP contract and durability story.
"""

from .app import ServeConfig, SweepService
from .jobs import (
    TERMINAL_STATES,
    ExecutorPool,
    Job,
    JobCancelled,
    JobEvent,
    JobNotFound,
    JobQueue,
    JobStateError,
    JobStore,
    JobStoreFull,
    execute_request,
)
from .schema import (
    JOB_SCHEMA,
    WORK_FUNCTIONS,
    JobRequest,
    SchemaError,
    job_request_from_json,
    job_request_to_json,
    result_to_json,
    retry_policy_from_json,
    retry_policy_to_json,
    session_spec_from_json,
    session_spec_to_json,
    sweep_spec_from_json,
    sweep_spec_to_json,
)
from .sse import SSEvent, format_event, parse_events

__all__ = [
    "JOB_SCHEMA",
    "TERMINAL_STATES",
    "WORK_FUNCTIONS",
    "ExecutorPool",
    "Job",
    "JobCancelled",
    "JobEvent",
    "JobNotFound",
    "JobQueue",
    "JobRequest",
    "JobStateError",
    "JobStore",
    "JobStoreFull",
    "SSEvent",
    "SchemaError",
    "ServeConfig",
    "SweepService",
    "execute_request",
    "format_event",
    "job_request_from_json",
    "job_request_to_json",
    "parse_events",
    "result_to_json",
    "retry_policy_from_json",
    "retry_policy_to_json",
    "session_spec_from_json",
    "session_spec_to_json",
    "sweep_spec_from_json",
    "sweep_spec_to_json",
]
