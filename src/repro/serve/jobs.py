"""Job store, priority queue, and executor pool for the sweep service.

The service's concurrency model keeps the deterministic engine
untouched: the asyncio side owns *scheduling state* (the job table,
the priority queue, SSE subscribers), while each running job executes
the synchronous engine on a worker thread (one per executor slot).
The only traffic between the two worlds is the engine's
:class:`~repro.runner.engine.ChunkProgress` reports, which the worker
thread forwards onto the event loop with
``asyncio.run_coroutine_threadsafe`` — awaiting each forward keeps
event order identical to chunk-resolution order and gives the loop
natural backpressure.

Durability mirrors the engine's checkpoint layer: every job persists
its request (``<id>.job.json``), its chunk spill (``<id>.ckpt.jsonl``,
written by the engine itself), and on completion its result payload
(``<id>.result.json``) into the spill directory.  A server killed
mid-job restarts, reloads the job table, re-enqueues every
non-terminal job with ``resume=True``, and the engine skips the chunks
the checkpoint already holds — the resumed result is bit-identical to
an uninterrupted run (see ``docs/service.md``).

Cancellation is cooperative and chunk-granular: a cancel request on a
running job raises :class:`JobCancelled` from the engine's ``on_chunk``
observer at the next chunk boundary, so finished chunks stay spilled
and a resubmitted job resumes rather than recomputes.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import json
import os
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable

from ..core.session import run_parallel_sessions
from ..obs.serve import ServerMetrics
from ..runner import run_sweep
from ..runner.engine import ChunkProgress, SweepResult
from .schema import (
    JOB_SCHEMA,
    WORK_FUNCTIONS,
    JobRequest,
    job_request_from_json,
    job_request_to_json,
    result_to_json,
)

__all__ = [
    "TERMINAL_STATES",
    "ExecutorPool",
    "Job",
    "JobCancelled",
    "JobEvent",
    "JobNotFound",
    "JobQueue",
    "JobStateError",
    "JobStore",
    "JobStoreFull",
    "execute_request",
]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Legal state-machine edges; anything else is a :class:`JobStateError`.
_TRANSITIONS = frozenset(
    {
        (QUEUED, RUNNING),
        (QUEUED, CANCELLED),
        (RUNNING, COMPLETED),
        (RUNNING, FAILED),
        (RUNNING, CANCELLED),
    }
)


class JobNotFound(KeyError):
    """No job with that id."""


class JobStateError(RuntimeError):
    """An operation is illegal for the job's current state."""


class JobStoreFull(RuntimeError):
    """The store is at its ``max_jobs`` capacity."""


class JobCancelled(RuntimeError):
    """Raised inside the engine's observer to stop a cancelled job."""


@dataclass(frozen=True)
class JobEvent:
    """One SSE-able event in a job's history.

    ``id`` increases monotonically per job (1-based) and doubles as the
    SSE ``id:`` field, so clients reconnecting with ``Last-Event-ID``
    replay exactly what they missed.
    """

    id: int
    event: str
    data: dict[str, Any]


@dataclass
class Job:
    """One job's full server-side state."""

    id: str
    request: JobRequest
    seq: int
    priority: int
    state: str = QUEUED
    chunks_done: int = 0
    n_chunks: int | None = None
    resumed_chunks: int = 0
    error: str | None = None
    result: dict[str, Any] | None = None
    cancel_requested: bool = False
    recovered: bool = False
    events: list[JobEvent] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        """The status payload ``GET /jobs/{id}`` serves."""
        return {
            "id": self.id,
            "kind": self.request.kind,
            "state": self.state,
            "priority": self.priority,
            "chunks_done": self.chunks_done,
            "n_chunks": self.n_chunks,
            "resumed_chunks": self.resumed_chunks,
            "error": self.error,
            "recovered": self.recovered,
        }


def execute_request(
    request: JobRequest,
    *,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = True,
    on_chunk: Callable[[ChunkProgress], None] | None = None,
    warn_key: object | None = None,
    transport: str = "auto",
    pool: Any | None = None,
) -> SweepResult:
    """Run one validated job request through the engine (synchronous).

    The single point where an HTTP job spec becomes an engine call —
    the executor pool runs exactly this on a worker thread, and tests
    call it directly to assert a served job's values are bit-identical
    to a direct engine run of the same spec.

    ``transport`` selects the chunk payload codec and ``pool`` an
    optional persistent :class:`repro.runner.WarmPool` the job should
    run on (the serve tier-4 fast path: one pool per executor slot,
    reused across jobs).  Neither changes results — the engine's
    determinism contract covers both knobs.
    """
    if request.kind == "sweep":
        fn: Callable = WORK_FUNCTIONS[request.fn]
        if request.fn_kwargs:
            fn = functools.partial(fn, **request.fn_kwargs)
        return run_sweep(
            fn,
            request.sweep,
            n_workers=request.n_workers,
            retry=request.retry,
            checkpoint=checkpoint,
            resume=resume,
            on_chunk=on_chunk,
            transport=transport,
            pool=pool,
        )
    return run_parallel_sessions(
        request.sessions,
        request.n_sessions,
        queries=request.queries,
        duration_s=request.duration_s,
        seed=request.seed,
        n_workers=request.n_workers,
        chunk_size=request.chunk_size,
        retry=request.retry,
        checkpoint=checkpoint,
        resume=resume,
        on_chunk=on_chunk,
        warn_key=warn_key,
        transport=transport,
        pool=pool,
    )


class JobQueue:
    """Priority-then-FIFO job queue for the executor pool.

    Higher :attr:`Job.priority` dequeues first; within one priority,
    submission order (the store's monotonic ``seq``) decides — that is
    the fairness contract the queue tests pin down.  Cancelled jobs are
    lazily removed: :meth:`remove` marks the id and :meth:`get` skips
    it, avoiding an O(n) heap rebuild on every cancel.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._removed: set[str] = set()
        self._cond = asyncio.Condition()

    async def put(self, job: Job) -> None:
        async with self._cond:
            self._removed.discard(job.id)
            heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
            self._cond.notify_all()

    async def get(self) -> str:
        """Next job id, waiting until one is available."""
        async with self._cond:
            while True:
                while self._heap and self._heap[0][2] in self._removed:
                    _, _, skipped = heapq.heappop(self._heap)
                    self._removed.discard(skipped)
                if self._heap:
                    return heapq.heappop(self._heap)[2]
                await self._cond.wait()

    async def remove(self, job_id: str) -> None:
        async with self._cond:
            if any(entry[2] == job_id for entry in self._heap):
                self._removed.add(job_id)

    @property
    def depth(self) -> int:
        """Jobs currently queued (pending lazy removals excluded)."""
        return sum(
            1 for entry in self._heap if entry[2] not in self._removed
        )


class JobStore:
    """Async job table: lifecycle, events, persistence.

    All mutation happens on the event loop under one
    ``asyncio.Condition``; worker threads reach the store only through
    ``run_coroutine_threadsafe``.  Every state change appends a
    ``state`` event and (with a spill directory) rewrites the job's
    sidecar file atomically, so the on-disk table is always a valid
    snapshot for a restarted server to :meth:`load_jobs` from.
    """

    def __init__(
        self,
        spill_dir: str | os.PathLike | None = None,
        *,
        metrics: ServerMetrics | None = None,
        max_jobs: int = 1024,
    ) -> None:
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.spill_dir = os.fspath(spill_dir) if spill_dir else None
        self.metrics = metrics
        self.max_jobs = max_jobs
        self.jobs: dict[str, Job] = {}
        #: Order jobs entered the RUNNING state (fairness assertions).
        self.dispatch_log: list[str] = []
        self._seq = 0
        self._cond = asyncio.Condition()
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)

    # -- paths / persistence --------------------------------------------

    def checkpoint_path(self, job_id: str) -> str | None:
        """The engine checkpoint file for a job (None when ephemeral)."""
        if self.spill_dir is None:
            return None
        return os.path.join(self.spill_dir, f"{job_id}.ckpt.jsonl")

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.spill_dir, f"{job_id}.job.json")

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self.spill_dir, f"{job_id}.result.json")

    def _write_json(self, path: str, payload: dict[str, Any]) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)

    def _persist(self, job: Job) -> None:
        if self.spill_dir is None:
            return
        from .. import __version__

        self._write_json(
            self._job_path(job.id),
            {
                "schema": JOB_SCHEMA,
                "version": __version__,
                "id": job.id,
                "seq": job.seq,
                "priority": job.priority,
                "state": job.state,
                "error": job.error,
                "chunks_done": job.chunks_done,
                "n_chunks": job.n_chunks,
                "resumed_chunks": job.resumed_chunks,
                "request": job_request_to_json(job.request),
            },
        )
        if job.result is not None:
            self._write_json(self._result_path(job.id), job.result)

    def load_jobs(self) -> list[Job]:
        """Reload persisted jobs; returns the ones needing a re-enqueue.

        Called once before the executor pool starts (no lock needed).
        Terminal jobs reload as-is (completed ones with their result
        payload); queued/running jobs — including jobs a killed server
        never finished — reset to ``queued`` with ``recovered=True``
        and are returned for the service to re-enqueue, where the
        engine's checkpoint resume picks up their finished chunks.
        Unreadable sidecar files are skipped, mirroring the checkpoint
        loader's torn-line tolerance.
        """
        if self.spill_dir is None:
            return []
        pending: list[Job] = []
        names = sorted(
            n for n in os.listdir(self.spill_dir)
            if n.endswith(".job.json")
        )
        for name in names:
            path = os.path.join(self.spill_dir, name)
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("schema") != JOB_SCHEMA:
                    continue
                request = job_request_from_json(payload["request"])
                job = Job(
                    id=str(payload["id"]),
                    request=request,
                    seq=int(payload["seq"]),
                    priority=int(payload["priority"]),
                    state=str(payload["state"]),
                    error=payload.get("error"),
                )
                job.chunks_done = int(payload.get("chunks_done") or 0)
                raw_n_chunks = payload.get("n_chunks")
                if raw_n_chunks is not None:
                    job.n_chunks = int(raw_n_chunks)
                job.resumed_chunks = int(payload.get("resumed_chunks") or 0)
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if job.state == COMPLETED:
                try:
                    with open(
                        self._result_path(job.id), encoding="utf-8"
                    ) as handle:
                        job.result = json.load(handle)
                except (OSError, ValueError):
                    # Completed but its result payload is gone:
                    # recompute (the checkpoint makes that a resume).
                    job.state = QUEUED
            if job.state not in TERMINAL_STATES:
                job.state = QUEUED
                job.recovered = True
                # record_chunk rebuilds the counters on resume (spilled
                # chunks replay through on_chunk with resumed=True), so
                # a stale snapshot here would double-count.
                job.chunks_done = 0
                job.resumed_chunks = 0
                pending.append(job)
            self.jobs[job.id] = job
            self._seq = max(self._seq, job.seq)
            self._append_event(
                job,
                "state",
                {"state": job.state, "recovered": job.recovered},
            )
        self._publish_census()
        return pending

    # -- events ----------------------------------------------------------

    def _append_event(
        self, job: Job, event: str, data: dict[str, Any]
    ) -> JobEvent:
        record = JobEvent(
            id=len(job.events) + 1, event=event, data=dict(data)
        )
        job.events.append(record)
        return record

    def _publish_census(self) -> None:
        if self.metrics is not None:
            self.metrics.set_job_states(self.census())

    def census(self) -> dict[str, int]:
        """Jobs by state (the ``serve_jobs`` gauge's source)."""
        counts: dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- lifecycle --------------------------------------------------------

    async def submit(self, request: JobRequest) -> Job:
        async with self._cond:
            active = sum(
                1
                for job in self.jobs.values()
                if job.state not in TERMINAL_STATES
            )
            if active >= self.max_jobs:
                raise JobStoreFull(
                    f"store already holds {active} active job(s) "
                    f"(max_jobs={self.max_jobs})"
                )
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:06d}",
                request=request,
                seq=self._seq,
                priority=request.priority,
            )
            self.jobs[job.id] = job
            self._append_event(
                job, "state", {"state": QUEUED, "recovered": False}
            )
            self._persist(job)
            if self.metrics is not None:
                self.metrics.job_submitted(request.kind)
            self._publish_census()
            self._cond.notify_all()
            return job

    def _get_locked(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFound(job_id)
        return job

    async def get(self, job_id: str) -> Job:
        async with self._cond:
            return self._get_locked(job_id)

    async def list_jobs(self) -> list[Job]:
        async with self._cond:
            return sorted(self.jobs.values(), key=lambda j: j.seq)

    async def advance(
        self, job_id: str, state: str, *, error: str | None = None
    ) -> Job:
        """Move a job along the state machine (illegal edges raise)."""
        async with self._cond:
            job = self._get_locked(job_id)
            if (job.state, state) not in _TRANSITIONS:
                raise JobStateError(
                    f"job {job_id} cannot go {job.state} -> {state}"
                )
            job.state = state
            job.error = error
            if state == RUNNING:
                self.dispatch_log.append(job_id)
            self._append_event(
                job, "state", {"state": state, "error": error}
            )
            self._persist(job)
            self._publish_census()
            self._cond.notify_all()
            return job

    async def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent for already-cancelled jobs.

        Queued jobs cancel immediately; running jobs get
        ``cancel_requested`` set and stop at the next chunk boundary
        (their checkpointed chunks survive for a later resume).
        Completed/failed jobs raise :class:`JobStateError`.
        """
        async with self._cond:
            job = self._get_locked(job_id)
            if job.state == CANCELLED:
                return job
            if job.state in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} already {job.state}; nothing to cancel"
                )
            if job.state == QUEUED:
                job.state = CANCELLED
                self._append_event(
                    job, "state", {"state": CANCELLED, "error": None}
                )
                self._persist(job)
                self._publish_census()
            else:
                job.cancel_requested = True
                self._append_event(job, "cancelling", {})
            self._cond.notify_all()
            return job

    async def delete(self, job_id: str) -> None:
        """Remove a terminal job and its on-disk sidecars."""
        async with self._cond:
            job = self._get_locked(job_id)
            if job.state not in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} is {job.state}; cancel it before "
                    f"deleting"
                )
            del self.jobs[job_id]
            if self.spill_dir is not None:
                for path in (
                    self._job_path(job_id),
                    self._result_path(job_id),
                    self.checkpoint_path(job_id),
                ):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
            self._publish_census()
            self._cond.notify_all()

    async def record_chunk(
        self, job_id: str, progress: ChunkProgress
    ) -> None:
        """Fold one engine chunk report into job state + an SSE event."""
        async with self._cond:
            job = self._get_locked(job_id)
            job.chunks_done = progress.chunks_done
            job.n_chunks = progress.n_chunks
            if progress.resumed:
                job.resumed_chunks += 1
            if self.metrics is not None:
                self.metrics.chunk_completed(
                    progress.busy_s, progress.resumed
                )
            self._append_event(
                job,
                "chunk",
                {
                    "chunk_index": progress.chunk_index,
                    "n_chunks": progress.n_chunks,
                    "chunks_done": progress.chunks_done,
                    "first_index": progress.first_index,
                    "n_units": progress.n_units,
                    "busy_s": progress.busy_s,
                    "resumed": progress.resumed,
                },
            )
            self._cond.notify_all()

    async def complete(self, job_id: str, result: SweepResult) -> Job:
        """Mark a job completed with its engine result."""
        async with self._cond:
            job = self._get_locked(job_id)
            if (job.state, COMPLETED) not in _TRANSITIONS:
                raise JobStateError(
                    f"job {job_id} cannot go {job.state} -> completed"
                )
            job.state = COMPLETED
            job.error = None
            job.result = result_to_json(result)
            job.resumed_chunks = result.resumed_chunks
            # Telemetry tail for SSE: merged stage timings plus the
            # scheduler's last few fault-tolerance events.
            if result.telemetry is not None:
                stage = result.telemetry.stage_timings()
            else:
                stage = {}
            self._append_event(
                job,
                "metrics",
                {
                    "wall_s": result.wall_s,
                    "busy_s": result.busy_s,
                    "executor": result.executor,
                    "retry_summary": result.retry_summary(),
                    "stage_groups": sorted(stage),
                },
            )
            if result.retries:
                self._append_event(
                    job,
                    "trace",
                    {
                        "retries": [
                            {
                                "chunk_index": e.chunk_index,
                                "first_unit": e.first_unit,
                                "attempt": e.attempt,
                                "reason": e.reason,
                                "action": e.action,
                            }
                            for e in result.retries[-10:]
                        ]
                    },
                )
            self._append_event(
                job, "state", {"state": COMPLETED, "error": None}
            )
            self._persist(job)
            self._publish_census()
            self._cond.notify_all()
            return job

    # -- subscriptions ----------------------------------------------------

    async def events_since(
        self, job_id: str, after_id: int = 0
    ) -> tuple[list[JobEvent], bool]:
        """Events newer than ``after_id`` plus whether the job is done."""
        async with self._cond:
            job = self._get_locked(job_id)
            newer = [e for e in job.events if e.id > after_id]
            return newer, job.state in TERMINAL_STATES

    async def subscribe(
        self, job_id: str, after_id: int = 0
    ) -> AsyncIterator[JobEvent]:
        """Yield a job's events live, starting after ``after_id``.

        Replays history first, then waits for new events; ends once the
        job is terminal and fully replayed (or deleted mid-stream).
        """
        while True:
            async with self._cond:
                job = self.jobs.get(job_id)
                if job is None:
                    return
                newer = [e for e in job.events if e.id > after_id]
                if not newer:
                    if job.state in TERMINAL_STATES:
                        return
                    await self._cond.wait()
                    continue
            for event in newer:
                after_id = event.id
                yield event


class ExecutorPool:
    """N asyncio executor slots draining the job queue.

    Each slot claims the highest-priority queued job and runs it on a
    worker thread via :func:`execute_request`; the engine's per-chunk
    reports come back through the loop in order.  Slots never crash
    the pool: engine failures mark the job ``failed`` and the slot
    moves on.
    """

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        *,
        slots: int = 2,
        metrics: ServerMetrics | None = None,
        transport: str = "auto",
        warm_workers: int = 0,
    ) -> None:
        """``transport``/``warm_workers`` opt the pool into the tier-4
        fast path: chunk payloads move over the selected codec, and a
        positive ``warm_workers`` gives each slot a persistent
        :class:`repro.runner.WarmPool` of that many workers, created
        lazily on the slot's first job and reused across jobs (worker
        session caches stay warm between requests).  A slot pool
        overrides each request's ``n_workers``; results remain
        bit-identical either way.
        """
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if warm_workers < 0:
            raise ValueError("warm_workers must be >= 0")
        self.store = store
        self.queue = queue
        self.slots = slots
        self.metrics = metrics
        self.transport = transport
        self.warm_workers = warm_workers
        self._tasks: list[asyncio.Task] = []
        self._slot_pools: dict[int, Any] = {}

    def _slot_pool(self, slot: int) -> Any | None:
        """The slot's persistent warm pool (created lazily), or None."""
        if self.warm_workers < 1:
            return None
        pool = self._slot_pools.get(slot)
        if pool is None:
            from ..runner import WarmPool

            pool = self._slot_pools[slot] = WarmPool(self.warm_workers)
        return pool

    async def start(self) -> None:
        self._tasks = [
            asyncio.create_task(
                self._worker(i), name=f"serve-slot-{i}"
            )
            for i in range(self.slots)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        pools = list(self._slot_pools.values())
        self._slot_pools = {}
        for pool in pools:
            pool.close()

    def _on_chunk(
        self, loop: asyncio.AbstractEventLoop, job: Job
    ) -> Callable[[ChunkProgress], None]:
        def forward(progress: ChunkProgress) -> None:
            # Worker-thread side of the bridge.  The cancel flag is a
            # plain bool written on the loop; reading it here is the
            # cooperative cancellation point (chunk granularity).
            if job.cancel_requested:
                raise JobCancelled(
                    f"job {job.id} cancelled at chunk "
                    f"{progress.chunk_index}"
                )
            asyncio.run_coroutine_threadsafe(
                self.store.record_chunk(job.id, progress), loop
            ).result()

        return forward

    async def _run_job(self, job: Job, slot: int = 0) -> None:
        loop = asyncio.get_running_loop()
        checkpoint = self.store.checkpoint_path(job.id)
        try:
            result = await asyncio.to_thread(
                execute_request,
                job.request,
                checkpoint=checkpoint,
                resume=True,
                on_chunk=self._on_chunk(loop, job),
                warn_key=job.id,
                transport=self.transport,
                pool=self._slot_pool(slot),
            )
        except JobCancelled:
            await self.store.advance(job.id, CANCELLED)
        except Exception as error:  # noqa: BLE001 - slot must survive
            await self.store.advance(
                job.id,
                FAILED,
                error=f"{type(error).__name__}: {error}",
            )
        else:
            await self.store.complete(job.id, result)

    async def _worker(self, slot: int = 0) -> None:
        while True:
            job_id = await self.queue.get()
            if self.metrics is not None:
                self.metrics.set_queue_depth(self.queue.depth)
            try:
                job = await self.store.get(job_id)
            except JobNotFound:
                continue
            if job.state != QUEUED:
                continue  # cancelled (or deleted) while queued
            await self.store.advance(job_id, RUNNING)
            await self._run_job(job, slot)
