"""The ``GET /dash`` page: a dependency-free live dashboard.

One self-contained HTML document — inline CSS and vanilla JS, no
third-party assets, nothing fetched from outside the serving host — so
it works from an air-gapped lab box.  The page drives itself off the
service's existing endpoints only:

* ``GET /healthz`` — slots, queue depth, jobs-by-state census;
* ``GET /metrics?format=json`` — the schema-1 registry snapshot
  (counters/gauges as numbers, histograms rendered generically as
  log-bucket bar charts, so new families appear without page changes);
* ``GET /jobs`` + ``GET /jobs/{id}/events`` (SSE) — per-job progress,
  subscribing to running jobs through the same EventSource stream
  ``repro jobs watch`` uses.

Polling cadence is 2 s for snapshots; SSE pushes arrive as emitted.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas,
         monospace; background: #14161a; color: #d6dae0; margin: 1.2em; }
  h1 { font-size: 15px; margin: 0 0 .2em; }
  h2 { font-size: 13px; margin: 1.2em 0 .4em; color: #8ab4f8;
       border-bottom: 1px solid #2a2e35; }
  #meta { color: #7a828c; }
  .cards { display: flex; flex-wrap: wrap; gap: .8em; margin-top: .8em; }
  .card { background: #1c1f24; border: 1px solid #2a2e35; border-radius: 6px;
          padding: .5em .9em; min-width: 8em; }
  .card .v { font-size: 20px; color: #e8eaed; }
  .card .k { color: #7a828c; font-size: 11px; }
  table { border-collapse: collapse; width: 100%; }
  td, th { text-align: left; padding: .15em .8em .15em 0; }
  th { color: #7a828c; font-weight: normal; }
  .num { text-align: right; font-variant-numeric: tabular-nums; }
  .bar { display: inline-block; height: 9px; background: #8ab4f8;
         vertical-align: middle; border-radius: 2px; }
  .state-running { color: #8ab4f8; } .state-completed { color: #81c995; }
  .state-failed { color: #f28b82; } .state-queued { color: #fdd663; }
  .state-cancelled { color: #7a828c; }
  #err { color: #f28b82; }
  .hist { margin-bottom: 1em; }
  .hist .t { color: #d6dae0; }
  progress { width: 14em; height: 9px; }
</style>
</head>
<body>
<h1>repro serve <span id="meta"></span></h1>
<div id="err"></div>
<div class="cards" id="cards"></div>
<h2>jobs</h2>
<table id="jobs"><thead><tr>
  <th>id</th><th>kind</th><th>state</th><th>progress</th><th>chunks</th>
</tr></thead><tbody></tbody></table>
<h2>counters &amp; gauges</h2>
<table id="scalars"><tbody></tbody></table>
<h2>histograms</h2>
<div id="hists"></div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const sources = new Map();   // job id -> EventSource
const progress = new Map();  // job id -> {done, total}

function fmt(v) {
  if (typeof v !== "number") return String(v);
  if (Number.isInteger(v)) return v.toLocaleString("en-US");
  return v.toPrecision(4);
}
function labelText(labels) {
  const keys = Object.keys(labels || {});
  if (!keys.length) return "";
  return "{" + keys.sort().map((k) => k + "=" + labels[k]).join(",") + "}";
}

function renderHealth(h) {
  $("meta").textContent = "v" + h.version + " \\u00b7 " + h.slots + " slots";
  const census = h.jobs || {};
  const running = census.running || 0;
  const cards = [
    ["queue depth", h.queue_depth],
    ["slots busy", running + " / " + h.slots],
    ["queued", census.queued || 0],
    ["running", running],
    ["completed", census.completed || 0],
    ["failed", census.failed || 0],
  ];
  $("cards").innerHTML = cards.map(
    ([k, v]) => '<div class="card"><div class="v">' + fmt(v) +
                '</div><div class="k">' + k + "</div></div>").join("");
}

function renderMetrics(snap) {
  const scalars = [];
  const hists = [];
  for (const [name, family] of Object.entries(snap.metrics || {})) {
    if (family.type === "histogram") { hists.push([name, family]); continue; }
    for (const series of family.series || []) {
      scalars.push([name + labelText(series.labels), series.value]);
    }
  }
  $("scalars").firstElementChild.innerHTML = scalars.map(
    ([name, v]) => "<tr><td>" + name + '</td><td class="num">' + fmt(v) +
                   "</td></tr>").join("");
  $("hists").innerHTML = hists.map(([name, family]) => {
    return (family.series || []).map((series) => {
      const counts = series.counts || [];
      const edges = series.edges || [];
      const peak = Math.max(1, ...counts);
      const rows = counts.map((c, i) => {
        const lo = i === 0 ? "-inf" : fmt(edges[i - 1]);
        const hi = i < edges.length ? fmt(edges[i]) : "+inf";
        const w = Math.round(120 * c / peak);
        return "<tr><td>" + lo + " .. " + hi + '</td><td class="num">' +
               fmt(c) + '</td><td><span class="bar" style="width:' +
               w + 'px"></span></td></tr>';
      }).join("");
      return '<div class="hist"><span class="t">' + name +
             labelText(series.labels) + "</span> (count " +
             fmt(series.count || 0) + ", sum " + fmt(series.sum || 0) +
             ")<table>" + rows + "</table></div>";
    }).join("");
  }).join("");
}

function subscribe(job) {
  if (sources.has(job.id)) return;
  const es = new EventSource("/jobs/" + job.id + "/events");
  const drop = () => { es.close(); sources.delete(job.id); };
  sources.set(job.id, es);
  es.addEventListener("chunk", (msg) => {
    try {
      const ev = JSON.parse(msg.data);
      progress.set(job.id, {
        done: ev.chunks_done ?? 0, total: ev.n_chunks ?? 0 });
    } catch (e) { /* malformed event; keep polling */ }
  });
  es.addEventListener("state", (msg) => {
    try {
      const ev = JSON.parse(msg.data);
      if (["completed", "failed", "cancelled"].includes(ev.state)) drop();
    } catch (e) { /* malformed event; keep polling */ }
  });
  es.addEventListener("done", drop);
  es.onerror = drop;
}

function renderJobs(jobs) {
  const body = $("jobs").tBodies[0];
  body.innerHTML = jobs.map((job) => {
    if (job.state === "running" || job.state === "queued") subscribe(job);
    const p = progress.get(job.id) ||
              { done: job.chunks_done || 0, total: job.n_chunks || 0 };
    const bar = p.total
      ? '<progress max="' + p.total + '" value="' + p.done + '"></progress> ' +
        p.done + "/" + p.total
      : "";
    return "<tr><td>" + job.id + "</td><td>" + (job.kind || "") +
           '</td><td class="state-' + job.state + '">' + job.state +
           "</td><td>" + bar + '</td><td class="num">' + fmt(p.done) +
           "</td></tr>";
  }).join("");
}

async function tick() {
  try {
    const [health, metrics, jobs] = await Promise.all([
      fetch("/healthz").then((r) => r.json()),
      fetch("/metrics?format=json").then((r) => r.json()),
      fetch("/jobs").then((r) => r.json()),
    ]);
    renderHealth(health);
    renderMetrics(metrics);
    renderJobs(jobs);
    $("err").textContent = "";
  } catch (e) {
    $("err").textContent = "fetch failed: " + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
