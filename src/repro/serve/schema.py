"""JSON schema for job submissions: specs in, results out, bit-for-bit.

The job server accepts work over HTTP as JSON, so every spec the
engine understands needs a JSON codec with a hard round-trip contract:

    ``from_json(to_json(spec)) == spec`` **and**
    ``to_json(from_json(payload)) == payload``

for every valid spec/payload — object → JSON → object → JSON is the
identity.  Python's ``json`` module round-trips float64 exactly (its
float repr is shortest-exact), so a spec that crosses the wire drives
the engine to the same bit-identical results a direct
:func:`repro.runner.run_sweep` call produces.

Validation is strict: unknown keys, wrong types, and unregistered work
functions raise :class:`SchemaError` with a message naming the bad
field, so clients get a 400 with a usable diagnosis instead of a
worker-side stack trace minutes later.

Work functions cannot travel as code (the server will not unpickle or
``eval`` anything a client sends); instead clients name one of the
registered :data:`WORK_FUNCTIONS` — the same picklable functions the
CLI and benchmarks use — and pass keyword arguments as JSON scalars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..runner.engine import SweepResult, SweepSpec
from ..runner.faults import RetryPolicy
from ..runner.workers import (
    SessionSpec,
    los_ber_point,
    nlos_session_stats,
    rng_probe,
)

__all__ = [
    "JOB_SCHEMA",
    "SchemaError",
    "WORK_FUNCTIONS",
    "JobRequest",
    "job_request_from_json",
    "job_request_to_json",
    "result_to_json",
    "retry_policy_from_json",
    "retry_policy_to_json",
    "session_spec_from_json",
    "session_spec_to_json",
    "sweep_spec_from_json",
    "sweep_spec_to_json",
    "value_to_json",
]

#: Job/request JSON schema version (stamped on server payloads).
JOB_SCHEMA = 1

#: Work functions a job may name.  All draw randomness exclusively
#: from their :class:`~repro.runner.engine.UnitContext`, so any job
#: built on them inherits the engine's determinism contract.
WORK_FUNCTIONS: dict[str, Callable] = {
    "los_ber_point": los_ber_point,
    "nlos_session_stats": nlos_session_stats,
    "rng_probe": rng_probe,
}


class SchemaError(ValueError):
    """A JSON payload does not match the job/spec schema."""


def _check_keys(
    payload: Mapping[str, Any],
    allowed: frozenset[str],
    required: frozenset[str],
    where: str,
) -> None:
    if not isinstance(payload, Mapping):
        raise SchemaError(f"{where} must be a JSON object")
    unknown = set(payload) - allowed
    if unknown:
        raise SchemaError(
            f"{where} has unknown key(s): {', '.join(sorted(unknown))}"
        )
    missing = required - set(payload)
    if missing:
        raise SchemaError(
            f"{where} is missing required key(s): "
            f"{', '.join(sorted(missing))}"
        )


def _check_int(value: Any, where: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"{where} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SchemaError(f"{where} must be >= {minimum}, got {value}")
    return value


def _check_number(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{where} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise SchemaError(f"{where} must be finite, got {value!r}")
    return float(value)


def _check_scalar(value: Any, where: str) -> Any:
    """A JSON scalar (bool, int, finite float, or string), unchanged."""
    if isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise SchemaError(f"{where} must be finite, got {value!r}")
        return value
    raise SchemaError(
        f"{where} must be a JSON scalar (bool/int/float/string), "
        f"got {type(value).__name__}"
    )


# -- RetryPolicy ---------------------------------------------------------

_RETRY_KEYS = frozenset(
    {
        "max_attempts",
        "timeout_s",
        "backoff_s",
        "backoff_factor",
        "backoff_max_s",
        "jitter",
        "breaker_failures",
    }
)


def retry_policy_to_json(policy: RetryPolicy) -> dict[str, Any]:
    """Encode a :class:`repro.runner.RetryPolicy` as a JSON dict."""
    return {
        "max_attempts": policy.max_attempts,
        "timeout_s": policy.timeout_s,
        "backoff_s": policy.backoff_s,
        "backoff_factor": policy.backoff_factor,
        "backoff_max_s": policy.backoff_max_s,
        "jitter": policy.jitter,
        "breaker_failures": policy.breaker_failures,
    }


def retry_policy_from_json(payload: Mapping[str, Any]) -> RetryPolicy:
    """Decode :func:`retry_policy_to_json` output (strict)."""
    _check_keys(payload, _RETRY_KEYS, frozenset(), "retry")
    kwargs: dict[str, Any] = {}
    if "max_attempts" in payload:
        kwargs["max_attempts"] = _check_int(
            payload["max_attempts"], "retry.max_attempts", 1
        )
    if "timeout_s" in payload and payload["timeout_s"] is not None:
        kwargs["timeout_s"] = _check_number(
            payload["timeout_s"], "retry.timeout_s"
        )
    for key in ("backoff_s", "backoff_factor", "backoff_max_s", "jitter"):
        if key in payload:
            kwargs[key] = _check_number(payload[key], f"retry.{key}")
    if "breaker_failures" in payload:
        kwargs["breaker_failures"] = _check_int(
            payload["breaker_failures"], "retry.breaker_failures", 1
        )
    try:
        return RetryPolicy(**kwargs)
    except ValueError as error:
        raise SchemaError(f"retry: {error}") from error


# -- SweepSpec -----------------------------------------------------------

_SWEEP_KEYS = frozenset({"axes", "seed", "chunk_size"})


def sweep_spec_to_json(spec: SweepSpec) -> dict[str, Any]:
    """Encode a :class:`repro.runner.SweepSpec` as a JSON dict.

    Axis values must already be JSON scalars; the sweep grid is the
    Cartesian product in axis insertion order, and JSON objects
    preserve insertion order, so the grid survives the round trip.
    """
    axes: dict[str, list[Any]] = {}
    for name, values in spec.axes.items():
        axes[name] = [
            _check_scalar(v, f"axes[{name!r}]") for v in values
        ]
    return {"axes": axes, "seed": spec.seed, "chunk_size": spec.chunk_size}


def sweep_spec_from_json(payload: Mapping[str, Any]) -> SweepSpec:
    """Decode :func:`sweep_spec_to_json` output (strict)."""
    _check_keys(payload, _SWEEP_KEYS, frozenset({"axes"}), "sweep")
    axes_payload = payload["axes"]
    if not isinstance(axes_payload, Mapping) or not axes_payload:
        raise SchemaError("sweep.axes must be a non-empty JSON object")
    axes: dict[str, list[Any]] = {}
    for name, values in axes_payload.items():
        if not isinstance(name, str) or not name:
            raise SchemaError(f"axis name {name!r} must be a string")
        if not isinstance(values, list) or not values:
            raise SchemaError(
                f"axes[{name!r}] must be a non-empty JSON list"
            )
        axes[name] = [
            _check_scalar(v, f"axes[{name!r}]") for v in values
        ]
    seed = _check_int(payload.get("seed", 0), "sweep.seed")
    chunk_size = payload.get("chunk_size")
    if chunk_size is not None:
        chunk_size = _check_int(chunk_size, "sweep.chunk_size", 1)
    try:
        return SweepSpec(axes=axes, seed=seed, chunk_size=chunk_size)
    except ValueError as error:
        raise SchemaError(f"sweep: {error}") from error


# -- SessionSpec ---------------------------------------------------------

_SESSION_KEYS = frozenset(
    {
        "kind",
        "distance_m",
        "location",
        "phy_fast_path",
        "session_fast_path",
        "batch_queries",
        "data_stream",
    }
)


def session_spec_to_json(spec: SessionSpec) -> dict[str, Any]:
    """Encode a :class:`repro.runner.SessionSpec` as a JSON dict."""
    return {
        "kind": spec.kind,
        "distance_m": spec.distance_m,
        "location": spec.location,
        "phy_fast_path": spec.phy_fast_path,
        "session_fast_path": spec.session_fast_path,
        "batch_queries": spec.batch_queries,
        "data_stream": spec.data_stream,
    }


def session_spec_from_json(payload: Mapping[str, Any]) -> SessionSpec:
    """Decode :func:`session_spec_to_json` output (strict)."""
    _check_keys(payload, _SESSION_KEYS, frozenset(), "sessions")
    kwargs: dict[str, Any] = {}
    if "kind" in payload:
        if not isinstance(payload["kind"], str):
            raise SchemaError("sessions.kind must be a string")
        kwargs["kind"] = payload["kind"]
    if "distance_m" in payload:
        kwargs["distance_m"] = _check_number(
            payload["distance_m"], "sessions.distance_m"
        )
    if "location" in payload:
        if not isinstance(payload["location"], str):
            raise SchemaError("sessions.location must be a string")
        kwargs["location"] = payload["location"]
    for key in ("phy_fast_path", "session_fast_path"):
        if key in payload:
            if not isinstance(payload[key], bool):
                raise SchemaError(f"sessions.{key} must be a boolean")
            kwargs[key] = payload[key]
    for key in ("batch_queries", "data_stream"):
        if key in payload:
            kwargs[key] = _check_int(payload[key], f"sessions.{key}", 1)
    try:
        return SessionSpec(**kwargs)
    except ValueError as error:
        raise SchemaError(f"sessions: {error}") from error


# -- JobRequest ----------------------------------------------------------

_JOB_KEYS = frozenset(
    {
        "kind",
        "fn",
        "fn_kwargs",
        "sweep",
        "sessions",
        "n_sessions",
        "queries",
        "duration_s",
        "seed",
        "n_workers",
        "chunk_size",
        "priority",
        "retry",
    }
)


@dataclass(frozen=True)
class JobRequest:
    """One validated job submission.

    Two job kinds map onto the two engine entry points:

    * ``"sweep"`` — evaluate the registered work function :attr:`fn`
      (with :attr:`fn_kwargs`) at every grid point of :attr:`sweep`
      via :func:`repro.runner.run_sweep`.
    * ``"sessions"`` — run :attr:`n_sessions` independent measurement
      sessions built from :attr:`sessions` via
      :func:`repro.core.session.run_parallel_sessions` (exactly one of
      :attr:`queries` / :attr:`duration_s` decides their length).

    Either way the job's values are bit-identical to calling the engine
    directly with the same spec and seed — the server adds scheduling,
    not physics.
    """

    kind: str = "sweep"
    fn: str = "rng_probe"
    fn_kwargs: dict[str, Any] = field(default_factory=dict)
    sweep: SweepSpec | None = None
    sessions: SessionSpec | None = None
    n_sessions: int = 0
    queries: int | None = None
    duration_s: float | None = None
    seed: int = 0
    n_workers: int = 1
    chunk_size: int | None = None
    priority: int = 0
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sweep", "sessions"):
            raise SchemaError(
                f"kind must be 'sweep' or 'sessions', got {self.kind!r}"
            )
        if self.kind == "sweep":
            if self.sweep is None:
                raise SchemaError("a sweep job needs a 'sweep' spec")
            if self.fn not in WORK_FUNCTIONS:
                raise SchemaError(
                    f"unknown work function {self.fn!r} (registered: "
                    f"{', '.join(sorted(WORK_FUNCTIONS))})"
                )
        else:
            if self.sessions is None:
                raise SchemaError(
                    "a sessions job needs a 'sessions' spec"
                )
            if self.n_sessions < 1:
                raise SchemaError("n_sessions must be >= 1")
            if (self.queries is None) == (self.duration_s is None):
                raise SchemaError(
                    "a sessions job needs exactly one of queries / "
                    "duration_s"
                )
        if self.n_workers < 1:
            raise SchemaError("n_workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SchemaError("chunk_size must be >= 1")


def job_request_to_json(request: JobRequest) -> dict[str, Any]:
    """Encode a :class:`JobRequest` as a JSON dict (round-trip exact)."""
    payload: dict[str, Any] = {"kind": request.kind}
    if request.kind == "sweep":
        payload["fn"] = request.fn
        if request.fn_kwargs:
            payload["fn_kwargs"] = dict(request.fn_kwargs)
        payload["sweep"] = sweep_spec_to_json(request.sweep)
    else:
        payload["sessions"] = session_spec_to_json(request.sessions)
        payload["n_sessions"] = request.n_sessions
        if request.queries is not None:
            payload["queries"] = request.queries
        if request.duration_s is not None:
            payload["duration_s"] = request.duration_s
        payload["seed"] = request.seed
        if request.chunk_size is not None:
            payload["chunk_size"] = request.chunk_size
    payload["n_workers"] = request.n_workers
    payload["priority"] = request.priority
    if request.retry is not None:
        payload["retry"] = retry_policy_to_json(request.retry)
    return payload


def job_request_from_json(payload: Mapping[str, Any]) -> JobRequest:
    """Decode a job submission (strict; raises :class:`SchemaError`)."""
    _check_keys(payload, _JOB_KEYS, frozenset(), "job")
    kind = payload.get("kind", "sweep")
    if kind not in ("sweep", "sessions"):
        raise SchemaError(
            f"kind must be 'sweep' or 'sessions', got {kind!r}"
        )
    kwargs: dict[str, Any] = {"kind": kind}
    if kind == "sweep":
        for key in (
            "sessions", "n_sessions", "queries", "duration_s", "seed",
            "chunk_size",
        ):
            if key in payload:
                raise SchemaError(
                    f"{key!r} does not apply to a sweep job"
                )
        fn = payload.get("fn", "rng_probe")
        if not isinstance(fn, str):
            raise SchemaError("fn must be a string")
        kwargs["fn"] = fn
        fn_kwargs = payload.get("fn_kwargs", {})
        if not isinstance(fn_kwargs, Mapping):
            raise SchemaError("fn_kwargs must be a JSON object")
        kwargs["fn_kwargs"] = {
            str(k): _check_scalar(v, f"fn_kwargs[{k!r}]")
            for k, v in fn_kwargs.items()
        }
        if "sweep" not in payload:
            raise SchemaError("a sweep job needs a 'sweep' spec")
        kwargs["sweep"] = sweep_spec_from_json(payload["sweep"])
    else:
        for key in ("fn", "fn_kwargs", "sweep"):
            if key in payload:
                raise SchemaError(
                    f"{key!r} does not apply to a sessions job"
                )
        if "sessions" not in payload:
            raise SchemaError("a sessions job needs a 'sessions' spec")
        kwargs["sessions"] = session_spec_from_json(payload["sessions"])
        kwargs["n_sessions"] = _check_int(
            payload.get("n_sessions", 0), "n_sessions"
        )
        if "queries" in payload:
            kwargs["queries"] = _check_int(payload["queries"], "queries", 1)
        if "duration_s" in payload:
            kwargs["duration_s"] = _check_number(
                payload["duration_s"], "duration_s"
            )
        kwargs["seed"] = _check_int(payload.get("seed", 0), "seed")
        if payload.get("chunk_size") is not None:
            kwargs["chunk_size"] = _check_int(
                payload["chunk_size"], "chunk_size", 1
            )
    kwargs["n_workers"] = _check_int(
        payload.get("n_workers", 1), "n_workers", 1
    )
    kwargs["priority"] = _check_int(payload.get("priority", 0), "priority")
    if payload.get("retry") is not None:
        kwargs["retry"] = retry_policy_from_json(payload["retry"])
    return JobRequest(**kwargs)


# -- results -------------------------------------------------------------

def value_to_json(value: Any) -> Any:
    """A work function's return value as JSON-able data.

    Handles the types the registered work functions and the session
    runner actually return — dicts of scalars, ``SessionStats``, numpy
    scalars, lists — exactly (floats survive JSON round trips
    bit-for-bit).  Anything unrecognized degrades to its ``repr`` so a
    result endpoint never 500s over an exotic value.
    """
    from ..core.session import SessionStats

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, SessionStats):
        return {
            "bits_sent": value.bits_sent,
            "bit_errors": value.bit_errors,
            "elapsed_s": value.elapsed_s,
            "queries": value.queries,
            "missed_triggers": value.missed_triggers,
            "ber": value.ber,
            "throughput_bps": value.throughput_bps,
        }
    if isinstance(value, Mapping):
        return {str(k): value_to_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [value_to_json(v) for v in value]
    return {"repr": repr(value)}


def result_to_json(result: SweepResult) -> dict[str, Any]:
    """A :class:`repro.runner.SweepResult` as the job-result payload."""
    from .. import __version__

    return {
        "schema": JOB_SCHEMA,
        "version": __version__,
        "seed": result.seed,
        "n_workers": result.n_workers,
        "chunk_size": result.chunk_size,
        "executor": result.executor,
        "resumed_chunks": result.resumed_chunks,
        "retry_summary": result.retry_summary(),
        "points": [
            {
                "parameters": value_to_json(dict(point.parameters)),
                "seed": point.seed,
                "value": value_to_json(point.value),
            }
            for point in result.points
        ],
    }
