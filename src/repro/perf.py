"""Lightweight per-stage timing counters for hot-path instrumentation.

The fast-path work (vectorized PHY decode, batched sessions) needs a way
to answer "where did the milliseconds go?" without dragging in a
profiler.  :class:`StageCounters` accumulates cumulative wall-clock
seconds and call counts per named stage; the cost per sample is two
``perf_counter`` calls and a dict update, so it is cheap enough to leave
enabled permanently at A-MPDU granularity (it is deliberately *not* used
per subframe).

Consumers: :class:`repro.phy.error_model.LinkErrorModel` times its
vectorized decode stages, :class:`repro.core.system.WiTagSystem` times
the query-cycle stages, and the ``repro bench`` CLI subcommand renders
both.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StageCounters:
    """Cumulative wall-clock seconds and call counts per named stage.

    Attributes:
        seconds: stage name -> cumulative seconds spent in that stage.
        calls: stage name -> number of recorded samples.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def add(self, stage: str, elapsed_s: float, count: int = 1) -> None:
        """Record ``elapsed_s`` seconds (and ``count`` calls) for a stage."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed_s
        self.calls[stage] = self.calls.get(stage, 0) + count

    @contextmanager
    def timed(self, stage: str, count: int = 1) -> Iterator[None]:
        """Context manager measuring one timed sample of ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start, count)

    def merge(self, other: "StageCounters") -> None:
        """Fold another counter set into this one (stage-wise sums)."""
        for stage, secs in other.seconds.items():
            self.add(stage, secs, other.calls.get(stage, 0))

    def reset(self) -> None:
        """Zero all stages."""
        self.seconds.clear()
        self.calls.clear()

    @property
    def total_seconds(self) -> float:
        """Sum of cumulative seconds across all stages."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly snapshot: ``{stage: {seconds, calls}}``."""
        return {
            stage: {
                "seconds": self.seconds[stage],
                "calls": self.calls.get(stage, 0),
            }
            for stage in self.seconds
        }

    def per_call_us(self, stage: str) -> float:
        """Mean microseconds per recorded call of ``stage`` (0 if unseen).

        The batch engines record one sample covering many calls (``add``
        with ``count=n``), so this stays comparable across the scalar,
        per-query and session-batch paths — the ``repro bench`` stage
        table uses it as its rate column.
        """
        calls = self.calls.get(stage, 0)
        if calls <= 0:
            return 0.0
        return 1e6 * self.seconds.get(stage, 0.0) / calls

    def as_rows_with_rate(self) -> list[list]:
        """Table rows ``[stage, seconds, calls, per_call_us]`` by cost.

        The one place per-call rate math lives: :meth:`rows` and the
        ``repro bench`` stage table both derive from this, and the rate
        column inherits :meth:`per_call_us`'s ``calls > 0`` guard.
        """
        return [
            [
                stage,
                self.seconds[stage],
                self.calls.get(stage, 0),
                self.per_call_us(stage),
            ]
            for stage in sorted(
                self.seconds, key=self.seconds.get, reverse=True
            )
        ]

    def rows(self) -> list[list]:
        """Table rows ``[stage, seconds, calls]`` sorted by cost."""
        return [row[:3] for row in self.as_rows_with_rate()]
