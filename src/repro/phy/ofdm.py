"""OFDM subcarrier layout helpers.

WiTAG's tag perturbs the *channel*, and real channels are frequency
selective: the tag's reflected path is longer than the direct path, so its
contribution rotates in phase across subcarriers.  The experiment substrate
models channels per subcarrier; this module provides the subcarrier grid.
"""

from __future__ import annotations

import numpy as np

from .constants import SUBCARRIER_SPACING_HZ, data_subcarriers

#: Occupied subcarrier index ranges per channel width (HT/VHT layouts),
#: expressed as (negative edge, positive edge) excluding DC.
_EDGE_INDEX = {20: 28, 40: 58, 80: 122, 160: 250}


def subcarrier_offsets_hz(channel_width_mhz: int = 20) -> np.ndarray:
    """Frequency offsets of the occupied subcarriers from the carrier.

    Returns a 1-D float array of length ``data_subcarriers(width) + pilots``
    approximated as a contiguous symmetric grid with the DC null removed.
    The exact pilot positions are immaterial to channel modelling, so the
    grid simply spans the occupied band.

    Raises:
        ValueError: for unsupported widths.
    """
    if channel_width_mhz not in _EDGE_INDEX:
        raise ValueError(
            f"unsupported channel width {channel_width_mhz} MHz"
        )
    edge = _EDGE_INDEX[channel_width_mhz]
    indices = np.concatenate(
        [np.arange(-edge, 0), np.arange(1, edge + 1)]
    )
    return indices * SUBCARRIER_SPACING_HZ


def data_subcarrier_offsets_hz(channel_width_mhz: int = 20) -> np.ndarray:
    """Offsets of (approximately) the data subcarriers only.

    Drops evenly spaced entries from the occupied grid to match the data
    subcarrier count, a faithful-enough layout for channel statistics.
    """
    grid = subcarrier_offsets_hz(channel_width_mhz)
    n_data = data_subcarriers(channel_width_mhz)
    if n_data >= grid.size:
        return grid
    pick = np.linspace(0, grid.size - 1, n_data).round().astype(int)
    return grid[pick]


def delay_phase_rotation(
    offsets_hz: np.ndarray, excess_delay_s: float
) -> np.ndarray:
    """Per-subcarrier phase factor for a path with extra propagation delay.

    A reflected path arriving ``excess_delay_s`` after the direct path
    contributes ``exp(-j * 2 * pi * f_k * tau)`` at subcarrier offset
    ``f_k``.  This is what makes the tag's channel perturbation frequency
    selective.
    """
    if excess_delay_s < 0:
        raise ValueError(f"excess delay must be >= 0, got {excess_delay_s}")
    return np.exp(-2j * np.pi * offsets_hz * excess_delay_s)
