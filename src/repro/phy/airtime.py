"""Airtime (frame duration) calculation for 802.11n/ac PPDUs.

The WiTAG throughput model (paper §4.1) is an airtime argument: the tag
sends one bit per A-MPDU subframe, so tag throughput equals

    usable_subframes / (A-MPDU airtime + SIFS + block-ACK airtime + IFS)

Minimising MPDU payload size and raising the PHY rate shrinks the
denominator.  This module computes PPDU durations exactly the way the
standard does: preamble + ceil(payload bits / bits-per-symbol) symbols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .constants import (
    SERVICE_BITS,
    SYMBOL_LONG_GI_S,
    SYMBOL_SHORT_GI_S,
    TAIL_BITS_PER_ENCODER,
)
from .mcs import Mcs
from .preamble import PhyFormat, PreambleInfo, preamble_info


@dataclass(frozen=True)
class PpduTiming:
    """Complete timing breakdown of one PPDU carrying a PSDU.

    Attributes:
        preamble: the preamble decomposition.
        n_symbols: number of data OFDM symbols.
        symbol_s: duration of each data symbol (GI dependent).
        psdu_bytes: size of the carried PSDU (A-MPDU) in bytes.
    """

    preamble: PreambleInfo
    n_symbols: int
    symbol_s: float
    psdu_bytes: int

    @property
    def data_s(self) -> float:
        """Duration of the data portion."""
        return self.n_symbols * self.symbol_s

    @property
    def total_s(self) -> float:
        """Total PPDU airtime in seconds."""
        return self.preamble.total_s + self.data_s

    def symbol_window(self, first_bit: int, last_bit: int,
                      bits_per_symbol: float) -> tuple[float, float]:
        """Time window (relative to PPDU start) covering a PSDU bit range.

        Used by the tag timing model to find when a given subframe is on
        the air.  Bits are indexed within the PSDU (service/tail excluded).
        """
        if first_bit < 0 or last_bit < first_bit:
            raise ValueError(
                f"invalid bit range [{first_bit}, {last_bit}]"
            )
        first_symbol = int((SERVICE_BITS + first_bit) // bits_per_symbol)
        last_symbol = int((SERVICE_BITS + last_bit) // bits_per_symbol)
        start = self.preamble.total_s + first_symbol * self.symbol_s
        end = self.preamble.total_s + (last_symbol + 1) * self.symbol_s
        return start, min(end, self.total_s)


def ppdu_airtime(
    psdu_bytes: int,
    mcs: Mcs,
    *,
    channel_width_mhz: int = 20,
    short_gi: bool = False,
    phy_format: PhyFormat = PhyFormat.HT_MIXED,
) -> PpduTiming:
    """Compute the airtime of a PPDU carrying ``psdu_bytes`` of PSDU.

    Follows the standard's TXTIME equation: the data portion carries the
    16 service bits, the PSDU, and 6 tail bits per BCC encoder, rounded up
    to whole OFDM symbols.

    Raises:
        ValueError: if ``psdu_bytes`` is negative.
    """
    if psdu_bytes < 0:
        raise ValueError(f"psdu_bytes must be >= 0, got {psdu_bytes}")
    pre = preamble_info(phy_format, mcs.spatial_streams)
    bits = SERVICE_BITS + 8 * psdu_bytes + TAIL_BITS_PER_ENCODER
    dbps = mcs.data_bits_per_symbol(channel_width_mhz)
    n_symbols = max(1, math.ceil(bits / dbps))
    symbol_s = SYMBOL_SHORT_GI_S if short_gi else SYMBOL_LONG_GI_S
    return PpduTiming(
        preamble=pre,
        n_symbols=n_symbols,
        symbol_s=symbol_s,
        psdu_bytes=psdu_bytes,
    )


@dataclass(frozen=True)
class SubframeSchedule:
    """On-air schedule of each A-MPDU subframe within a PPDU.

    The tag uses (a detected version of) this schedule to align its
    reflection toggles with subframe boundaries.

    Attributes:
        timing: the enclosing PPDU timing.
        windows: per-subframe (start_s, end_s) offsets from PPDU start.
    """

    timing: PpduTiming
    windows: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    @property
    def n_subframes(self) -> int:
        return len(self.windows)


def subframe_schedule(
    subframe_bytes: list[int],
    mcs: Mcs,
    *,
    channel_width_mhz: int = 20,
    short_gi: bool = False,
    phy_format: PhyFormat = PhyFormat.HT_MIXED,
) -> SubframeSchedule:
    """Compute when each subframe of an A-MPDU is on the air.

    Args:
        subframe_bytes: serialized length (delimiter + MPDU + padding) of
            each subframe, in PSDU order.
        mcs: transmission MCS.

    Returns:
        A :class:`SubframeSchedule` whose windows partition the data
        portion of the PPDU (boundaries rounded to OFDM symbols, since a
        symbol is the smallest decodable unit).
    """
    total = sum(subframe_bytes)
    timing = ppdu_airtime(
        total,
        mcs,
        channel_width_mhz=channel_width_mhz,
        short_gi=short_gi,
        phy_format=phy_format,
    )
    dbps = mcs.data_bits_per_symbol(channel_width_mhz)
    windows: list[tuple[float, float]] = []
    bit_cursor = 0
    for size in subframe_bytes:
        if size <= 0:
            raise ValueError(f"subframe sizes must be positive, got {size}")
        first = bit_cursor
        last = bit_cursor + 8 * size - 1
        windows.append(timing.symbol_window(first, last, dbps))
        bit_cursor = last + 1
    return SubframeSchedule(timing=timing, windows=tuple(windows))
