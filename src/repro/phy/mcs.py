"""IEEE 802.11n (HT) and 802.11ac (VHT) MCS tables.

WiTAG queries are ordinary A-MPDUs sent at a real MCS; the paper notes
(§4.1) that query frames should use *"the highest PHY-layer transmission
rate that achieves a near-zero error rate"* so that natural losses are not
confused with tag bits.  The experiment harness therefore needs the full
rate tables to trade airtime against robustness.

An :class:`Mcs` bundles modulation, coding rate and spatial streams and can
compute its data rate for any channel width / guard interval combination,
reproducing the familiar published numbers (e.g. HT MCS 7 = 72.2 Mb/s at
20 MHz short GI; VHT MCS 9, 80 MHz, 3 streams = 1300 Mb/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import (
    SYMBOL_LONG_GI_S,
    SYMBOL_SHORT_GI_S,
    data_subcarriers,
)
from .modulation import (
    CodingRate,
    Modulation,
    RATE_1_2,
    RATE_2_3,
    RATE_3_4,
    RATE_5_6,
)

#: (modulation, coding rate) for base MCS indices 0-9.  HT uses 0-7 per
#: stream group; VHT extends to 8 (256-QAM 3/4) and 9 (256-QAM 5/6).
_BASE_MCS: tuple[tuple[Modulation, CodingRate], ...] = (
    (Modulation.BPSK, RATE_1_2),  # 0
    (Modulation.QPSK, RATE_1_2),  # 1
    (Modulation.QPSK, RATE_3_4),  # 2
    (Modulation.QAM16, RATE_1_2),  # 3
    (Modulation.QAM16, RATE_3_4),  # 4
    (Modulation.QAM64, RATE_2_3),  # 5
    (Modulation.QAM64, RATE_3_4),  # 6
    (Modulation.QAM64, RATE_5_6),  # 7
    (Modulation.QAM256, RATE_3_4),  # 8 (VHT only)
    (Modulation.QAM256, RATE_5_6),  # 9 (VHT only)
)


@dataclass(frozen=True)
class Mcs:
    """A modulation-and-coding scheme with a spatial-stream count.

    Attributes:
        index: the per-stream MCS index (0-7 for HT, 0-9 for VHT).
        modulation: subcarrier modulation.
        coding_rate: convolutional coding rate.
        spatial_streams: number of spatial streams (1-4 modelled).
    """

    index: int
    modulation: Modulation
    coding_rate: CodingRate
    spatial_streams: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.index <= 9:
            raise ValueError(f"MCS index must be 0-9, got {self.index}")
        if not 1 <= self.spatial_streams <= 4:
            raise ValueError(
                f"spatial streams must be 1-4, got {self.spatial_streams}"
            )

    def data_bits_per_symbol(self, channel_width_mhz: int = 20) -> float:
        """Data bits conveyed per OFDM symbol (N_DBPS)."""
        n_sd = data_subcarriers(channel_width_mhz)
        coded = n_sd * self.modulation.bits_per_symbol * self.spatial_streams
        return coded * self.coding_rate.value

    def data_rate_bps(
        self, channel_width_mhz: int = 20, short_gi: bool = False
    ) -> float:
        """PHY data rate in bits per second."""
        symbol_s = SYMBOL_SHORT_GI_S if short_gi else SYMBOL_LONG_GI_S
        return self.data_bits_per_symbol(channel_width_mhz) / symbol_s

    @property
    def ht_index(self) -> int:
        """The flattened 802.11n MCS index (streams folded in, 0-31)."""
        if self.index > 7:
            raise ValueError("HT MCS indices only cover base MCS 0-7")
        return (self.spatial_streams - 1) * 8 + self.index

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MCS{self.index} ({self.modulation.value} "
            f"{self.coding_rate}, {self.spatial_streams}ss)"
        )


def ht_mcs(index: int) -> Mcs:
    """Build an 802.11n MCS from its flattened index 0-31.

    Index 0-7 are one stream, 8-15 two streams, and so on — the encoding
    used by HT rate tables and by drivers like ath9k.
    """
    if not 0 <= index <= 31:
        raise ValueError(f"HT MCS index must be 0-31, got {index}")
    streams, base = divmod(index, 8)
    modulation, rate = _BASE_MCS[base]
    return Mcs(base, modulation, rate, spatial_streams=streams + 1)


def vht_mcs(index: int, spatial_streams: int = 1) -> Mcs:
    """Build an 802.11ac MCS (base index 0-9 plus a stream count)."""
    if not 0 <= index <= 9:
        raise ValueError(f"VHT MCS index must be 0-9, got {index}")
    modulation, rate = _BASE_MCS[index]
    return Mcs(index, modulation, rate, spatial_streams=spatial_streams)


#: Minimum receiver sensitivity SNR (dB) commonly required per base MCS for
#: a 10% PER on 1000-byte frames over AWGN.  Derived from 802.11 receiver
#: minimum input sensitivity tables; used for rate selection heuristics.
MCS_MIN_SNR_DB: dict[int, float] = {
    0: 2.0,
    1: 5.0,
    2: 9.0,
    3: 11.0,
    4: 15.0,
    5: 18.0,
    6: 20.0,
    7: 25.0,
    8: 29.0,
    9: 31.0,
}


def highest_reliable_mcs(
    snr_db: float,
    *,
    margin_db: float = 3.0,
    spatial_streams: int = 1,
    allow_vht: bool = False,
) -> Mcs:
    """Pick the fastest MCS whose sensitivity threshold clears ``snr_db``.

    This mirrors the rate-selection guidance in WiTAG §4.1: use the highest
    rate that still achieves near-zero loss, leaving ``margin_db`` of
    headroom so that environmental fading does not masquerade as tag data.

    Always returns at least MCS 0.
    """
    top = 9 if allow_vht else 7
    best = 0
    for idx in range(top + 1):
        if snr_db - margin_db >= MCS_MIN_SNR_DB[idx]:
            best = idx
    modulation, rate = _BASE_MCS[best]
    return Mcs(best, modulation, rate, spatial_streams=spatial_streams)
