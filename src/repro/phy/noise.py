"""Thermal noise and receiver SNR computation.

Standard link-budget machinery: the noise floor of a WiFi receiver is
``kTB`` (about -101 dBm for 20 MHz at 290 K) raised by the receiver's
noise figure.  All powers in this library are carried in dBm at API
boundaries and converted to watts internally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .constants import BOLTZMANN_J_PER_K, REFERENCE_TEMPERATURE_K


def dbm_to_watts(dbm: float) -> float:
    """Convert power in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert power in watts to dBm.

    Raises:
        ValueError: for non-positive power.
    """
    if watts <= 0:
        raise ValueError(f"power must be > 0 W, got {watts}")
    return 10.0 * math.log10(watts) + 30.0


def thermal_noise_dbm(
    bandwidth_hz: float, temperature_k: float = REFERENCE_TEMPERATURE_K
) -> float:
    """Thermal noise power kTB in dBm for a given bandwidth."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be > 0 Hz, got {bandwidth_hz}")
    if temperature_k <= 0:
        raise ValueError(f"temperature must be > 0 K, got {temperature_k}")
    return watts_to_dbm(BOLTZMANN_J_PER_K * temperature_k * bandwidth_hz)


@dataclass(frozen=True)
class ReceiverNoise:
    """Noise model of a WiFi receiver front end.

    Attributes:
        bandwidth_hz: occupied channel bandwidth.
        noise_figure_db: receiver noise figure (typical commodity NICs:
            5-8 dB).
        temperature_k: ambient temperature.
    """

    bandwidth_hz: float = 20e6
    noise_figure_db: float = 6.0
    temperature_k: float = REFERENCE_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.noise_figure_db < 0:
            raise ValueError("noise figure cannot be negative")

    @property
    def noise_floor_dbm(self) -> float:
        """Total noise power referred to the receiver input."""
        return (
            thermal_noise_dbm(self.bandwidth_hz, self.temperature_k)
            + self.noise_figure_db
        )

    @property
    def noise_floor_w(self) -> float:
        """Noise floor in watts."""
        return dbm_to_watts(self.noise_floor_dbm)

    def snr_db(self, rx_power_dbm: float) -> float:
        """SNR for a given received signal power."""
        return rx_power_dbm - self.noise_floor_dbm

    def snr_linear(self, rx_power_dbm: float) -> float:
        """Linear SNR for a given received signal power."""
        return 10.0 ** (self.snr_db(rx_power_dbm) / 10.0)
