"""Temporally correlated fading processes.

The paper (§5, footnote 2) notes WiFi channel coherence times around
100 ms — long against one A-MPDU (~1.3 ms) but short against a one-minute
measurement.  The default channel model draws independent fading per query
(a worst-case interleaving of channel states); this module provides the
correlated alternative: a Gauss-Markov (AR(1)) process whose autocorrelation
decays with the configured coherence time, so that consecutive query cycles
see nearly the same channel and deep fades arrive as multi-query bursts —
the structure that motivates message-level retransmission (see
``benchmarks/test_ablation_fec.py``).

The process generates the *scatter* component of a Rician channel; the LOS
component stays fixed.  For a step of ``dt`` seconds the innovation mixes
as ``x' = rho x + sqrt(1 - rho^2) w`` with ``rho = exp(-dt / tau)``, which
preserves the stationary complex-Gaussian distribution exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..seeding import component_rng


@dataclass
class GaussMarkovFading:
    """A unit-variance complex AR(1) fading process.

    Attributes:
        coherence_time_s: e-folding time of the autocorrelation
            (~100 ms for indoor WiFi per the paper's references).
        rng: randomness source.
    """

    coherence_time_s: float = 0.1
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("fading-gm")
    )

    def __post_init__(self) -> None:
        if self.coherence_time_s <= 0:
            raise ValueError(
                f"coherence time must be > 0, got {self.coherence_time_s}"
            )
        self._state = self._draw()

    def _draw(self) -> complex:
        return complex(
            self.rng.normal(0.0, math.sqrt(0.5)),
            self.rng.normal(0.0, math.sqrt(0.5)),
        )

    @property
    def state(self) -> complex:
        """Current unit-variance complex Gaussian sample."""
        return self._state

    def advance(self, dt_s: float) -> complex:
        """Step the process forward by ``dt_s`` and return the new state."""
        if dt_s < 0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        rho = math.exp(-dt_s / self.coherence_time_s)
        innovation = self._draw()
        self._state = rho * self._state + math.sqrt(1.0 - rho * rho) * innovation
        return self._state

    def correlation_after(self, dt_s: float) -> float:
        """Theoretical autocorrelation after a ``dt_s`` step."""
        if dt_s < 0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        return math.exp(-dt_s / self.coherence_time_s)


@dataclass
class CorrelatedFadingChannel:
    """Correlated Rician fading for the direct and tag paths of a link.

    Produces the same kind of samples as
    :meth:`repro.phy.channel.BackscatterChannel.sample_direct_fading` /
    ``sample_tag_fading``, but evolved continuously in time: call
    :meth:`advance` with the elapsed time of each query cycle.

    Attributes:
        direct_los: the static LOS direct-path gain.
        rician_k_db: K-factor of the direct path (None = no fading).
        tag_rician_k_db: K-factor of the tag path (None = no fading).
        coherence_time_s: shared coherence time.
        rng: randomness source.
    """

    direct_los: complex
    rician_k_db: float | None = 15.0
    tag_rician_k_db: float | None = 5.0
    coherence_time_s: float = 0.1
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("fading-correlated")
    )

    def __post_init__(self) -> None:
        seeds = np.random.SeedSequence(self.rng.integers(0, 2**63))
        child_a, child_b = seeds.spawn(2)
        self._direct_process = GaussMarkovFading(
            self.coherence_time_s, np.random.default_rng(child_a)
        )
        self._tag_process = GaussMarkovFading(
            self.coherence_time_s, np.random.default_rng(child_b)
        )

    def advance(self, dt_s: float) -> None:
        """Evolve both fading processes by ``dt_s`` seconds."""
        self._direct_process.advance(dt_s)
        self._tag_process.advance(dt_s)

    def sample_batch(
        self, dts_s: list[float] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance through a sequence of cycle durations, recording gains.

        For each ``dt`` in ``dts_s``, evolves both processes by ``dt``
        and records ``(direct_gain(), tag_fading())`` — exactly the
        per-query sequence the scalar session loop performs, so the
        returned complex arrays are bitwise equal to a scalar replay on
        the same generator state.  The AR(1) recursion is inherently
        sequential (state ``i`` feeds state ``i+1``), so this is a tight
        loop rather than a matrix pass; it exists to give the session-
        batch engine a single call per chunk.
        """
        count = len(dts_s)
        direct = np.empty(count, dtype=complex)
        tag = np.empty(count, dtype=complex)
        for i, dt_s in enumerate(dts_s):
            self.advance(dt_s)
            direct[i] = self.direct_gain()
            tag[i] = self.tag_fading()
        return direct, tag

    def direct_gain(self) -> complex:
        """Current faded direct-path gain."""
        if self.rician_k_db is None:
            return self.direct_los
        k = 10.0 ** (self.rician_k_db / 10.0)
        los_part = math.sqrt(k / (k + 1.0)) * self.direct_los
        scatter_scale = abs(self.direct_los) * math.sqrt(1.0 / (k + 1.0))
        return complex(los_part + scatter_scale * self._direct_process.state)

    def tag_fading(self) -> complex:
        """Current unit-mean tag-path fading multiplier."""
        if self.tag_rician_k_db is None:
            return 1.0 + 0.0j
        k = 10.0 ** (self.tag_rician_k_db / 10.0)
        los_part = math.sqrt(k / (k + 1.0))
        scatter_scale = math.sqrt(1.0 / (k + 1.0))
        return complex(los_part + scatter_scale * self._tag_process.state)
