"""Coded bit-error-rate model for the 802.11 binary convolutional code.

All 802.11n/ac MCSs use the industry-standard rate-1/2, constraint-length-7
convolutional code (generator polynomials 133/171 octal), punctured up to
2/3, 3/4 or 5/6.  Simulating Viterbi decoding per bit would be prohibitively
slow for minute-long experiments, so — as is standard in 802.11 system-level
simulators (e.g. ns-3's error-rate models) — we use the union bound on the
first-event error probability:

    P_u <= sum_{d >= d_free} a_d * P2(d)

where ``a_d`` are the weight-spectrum coefficients of the punctured code and
``P2(d)`` is the pairwise error probability between codewords at Hamming
distance ``d`` on a BSC with crossover probability ``p`` (the uncoded BER
from :mod:`repro.phy.modulation`):

    P2(d) = sum_{k > d/2} C(d,k) p^k (1-p)^(d-k)        (d odd)
    P2(d) = 1/2 C(d,d/2) p^(d/2) (1-p)^(d/2) + ...      (d even)

The weight spectra below are the published values for the 133/171 code and
its standard puncturing patterns (Frenger et al., "Multi-rate convolutional
codes", and the tables used by ns-3/Matlab WLAN toolboxes).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from .modulation import CodingRate, RATE_1_2, RATE_2_3, RATE_3_4, RATE_5_6

#: Weight spectra: coding rate -> (d_free, [a_d for d = d_free .. d_free+9]).
_WEIGHT_SPECTRA: dict[tuple[int, int], tuple[int, tuple[int, ...]]] = {
    (1, 2): (10, (11, 0, 38, 0, 193, 0, 1331, 0, 7275, 0)),
    (2, 3): (6, (1, 16, 48, 158, 642, 2435, 9174, 34701, 131533, 499312)),
    (3, 4): (5, (8, 31, 160, 892, 4512, 23307, 121077, 625059, 3234886, 16753077)),
    (5, 6): (4, (14, 69, 654, 4996, 39677, 314973, 2503576, 19875546, 157824160, 1253169928)),
}


def _pairwise_error_probability(d: int, p: float) -> float:
    """Probability of choosing the wrong codeword at Hamming distance ``d``.

    ``p`` is the channel crossover probability (uncoded BER).
    """
    if p <= 0.0:
        return 0.0
    if p >= 0.5:
        return 0.5
    total = 0.0
    if d % 2 == 0:
        half = d // 2
        total += 0.5 * math.comb(d, half) * p**half * (1.0 - p) ** half
        start = half + 1
    else:
        start = (d + 1) // 2
    for k in range(start, d + 1):
        total += math.comb(d, k) * p**k * (1.0 - p) ** (d - k)
    return min(total, 1.0)


@lru_cache(maxsize=4096)
def _coded_ber_cached(rate_key: tuple[int, int], p_rounded: float) -> float:
    d_free, spectrum = _WEIGHT_SPECTRA[rate_key]
    bound = 0.0
    for offset, a_d in enumerate(spectrum):
        d = d_free + offset
        if a_d == 0:
            continue
        bound += a_d * _pairwise_error_probability(d, p_rounded)
    return min(0.5, bound)


def coded_bit_error_rate(rate: CodingRate, uncoded_ber: float) -> float:
    """Post-Viterbi bit error probability via the union bound.

    Args:
        rate: the punctured convolutional coding rate (1/2, 2/3, 3/4, 5/6).
        uncoded_ber: channel (pre-decoder) bit error probability in [0, 0.5].

    Returns:
        Estimated decoded BER, clipped to [0, 0.5].  The union bound is tight
        at the low BERs that matter for packet-error modelling and is clipped
        where it diverges (high channel BER), which the packet error model
        treats as certain loss anyway.

    Raises:
        ValueError: for an unsupported coding rate or out-of-range BER.
    """
    if not 0.0 <= uncoded_ber <= 0.5:
        raise ValueError(f"uncoded BER must be in [0, 0.5], got {uncoded_ber}")
    key = (rate.numerator, rate.denominator)
    if key not in _WEIGHT_SPECTRA:
        raise ValueError(f"unsupported coding rate {rate}")
    # Round to stabilise the cache; 1e-7 relative resolution is far below
    # any effect observable in packet-level experiments.
    p_rounded = round(uncoded_ber, 9)
    return _coded_ber_cached(key, p_rounded)


#: Grid bounds for the precomputed union-bound tables.  Below
#: ``TABLE_P_MIN`` the union bound is astronomically small (the rate-5/6
#: code, the weakest supported, gives ~1e-22 at p = 1e-12) and is treated
#: as exactly zero.
TABLE_P_MIN = 1e-12
TABLE_POINTS = 4096


@lru_cache(maxsize=len(_WEIGHT_SPECTRA))
def _coded_ber_table(rate_key: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Log-log sample grid of the union bound for one coding rate.

    Returns ``(log_p, log_coded)`` arrays of :data:`TABLE_POINTS` samples
    with ``p`` log-spaced over [:data:`TABLE_P_MIN`, 0.5].  The union
    bound is smooth and near-polynomial in log-log space, so linear
    interpolation on this grid reproduces the exact bound to better than
    1e-3 relative error everywhere (asserted by the test suite).
    """
    log_p = np.linspace(
        math.log(TABLE_P_MIN), math.log(0.5), TABLE_POINTS
    )
    coded = np.array(
        [_coded_ber_cached(rate_key, float(p)) for p in np.exp(log_p)]
    )
    # The bound is strictly positive for p > 0; clip defensively so the
    # log never sees a zero.
    return log_p, np.log(np.maximum(coded, 1e-300))


def coded_bit_error_rate_batch(rate: CodingRate, uncoded_ber) -> np.ndarray:
    """Vectorized :func:`coded_bit_error_rate` via table interpolation.

    This is the fast-path variant used by the vectorized PHY decode: it
    interpolates the precomputed union-bound table in log-log space
    instead of evaluating the weight-spectrum sum per value.  Accuracy is
    better than 1e-3 relative against the exact bound; uncoded BERs below
    :data:`TABLE_P_MIN` map to exactly 0 (the bound there is < 1e-22).
    :func:`coded_bit_error_rate` remains the exact reference.

    Args:
        rate: the punctured convolutional coding rate (1/2, 2/3, 3/4, 5/6).
        uncoded_ber: array-like of channel BERs, each in [0, 0.5].

    Returns:
        Array of decoded BERs in [0, 0.5], same shape as the input.

    Raises:
        ValueError: for an unsupported coding rate or out-of-range BER.
    """
    p = np.asarray(uncoded_ber, dtype=float)
    if np.any((p < 0.0) | (p > 0.5)):
        raise ValueError("uncoded BER values must be in [0, 0.5]")
    key = (rate.numerator, rate.denominator)
    if key not in _WEIGHT_SPECTRA:
        raise ValueError(f"unsupported coding rate {rate}")
    log_p_grid, log_coded_grid = _coded_ber_table(key)
    out = np.zeros_like(p)
    in_table = p > TABLE_P_MIN
    if np.any(in_table):
        interp = np.exp(
            np.interp(np.log(p[in_table]), log_p_grid, log_coded_grid)
        )
        out[in_table] = np.minimum(0.5, interp)
    return out


def packet_error_rate_batch(coded_ber, length_bits) -> np.ndarray:
    """Vectorized :func:`packet_error_rate` (same log1p/expm1 formulation).

    Args:
        coded_ber: array-like of decoded BERs.
        length_bits: packet length(s) in bits — a scalar or an array
            broadcastable against ``coded_ber``.
    """
    ber = np.asarray(coded_ber, dtype=float)
    bits = np.asarray(length_bits)
    if np.any(bits < 0):
        raise ValueError("length_bits must be >= 0")
    safe = np.clip(ber, 0.0, np.nextafter(0.5, 0.0))
    per = -np.expm1(bits * np.log1p(-safe))
    per = np.where(ber >= 0.5, 1.0, per)
    return np.where(ber <= 0.0, 0.0, per)


def packet_error_rate(coded_ber: float, length_bits: int) -> float:
    """Probability that a packet of ``length_bits`` contains >= 1 bit error.

    Assumes independent bit errors after interleaving, the standard
    system-level approximation: ``PER = 1 - (1 - BER)^L``.
    """
    if length_bits < 0:
        raise ValueError(f"length_bits must be >= 0, got {length_bits}")
    if coded_ber <= 0.0:
        return 0.0
    if coded_ber >= 0.5:
        return 1.0
    # log1p formulation avoids underflow for tiny BERs on long frames.
    return -math.expm1(length_bits * math.log1p(-coded_ber))


SUPPORTED_RATES = (RATE_1_2, RATE_2_3, RATE_3_4, RATE_5_6)
