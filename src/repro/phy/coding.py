"""Coded bit-error-rate model for the 802.11 binary convolutional code.

All 802.11n/ac MCSs use the industry-standard rate-1/2, constraint-length-7
convolutional code (generator polynomials 133/171 octal), punctured up to
2/3, 3/4 or 5/6.  Simulating Viterbi decoding per bit would be prohibitively
slow for minute-long experiments, so — as is standard in 802.11 system-level
simulators (e.g. ns-3's error-rate models) — we use the union bound on the
first-event error probability:

    P_u <= sum_{d >= d_free} a_d * P2(d)

where ``a_d`` are the weight-spectrum coefficients of the punctured code and
``P2(d)`` is the pairwise error probability between codewords at Hamming
distance ``d`` on a BSC with crossover probability ``p`` (the uncoded BER
from :mod:`repro.phy.modulation`):

    P2(d) = sum_{k > d/2} C(d,k) p^k (1-p)^(d-k)        (d odd)
    P2(d) = 1/2 C(d,d/2) p^(d/2) (1-p)^(d/2) + ...      (d even)

The weight spectra below are the published values for the 133/171 code and
its standard puncturing patterns (Frenger et al., "Multi-rate convolutional
codes", and the tables used by ns-3/Matlab WLAN toolboxes).
"""

from __future__ import annotations

import math
from functools import lru_cache

from .modulation import CodingRate, RATE_1_2, RATE_2_3, RATE_3_4, RATE_5_6

#: Weight spectra: coding rate -> (d_free, [a_d for d = d_free .. d_free+9]).
_WEIGHT_SPECTRA: dict[tuple[int, int], tuple[int, tuple[int, ...]]] = {
    (1, 2): (10, (11, 0, 38, 0, 193, 0, 1331, 0, 7275, 0)),
    (2, 3): (6, (1, 16, 48, 158, 642, 2435, 9174, 34701, 131533, 499312)),
    (3, 4): (5, (8, 31, 160, 892, 4512, 23307, 121077, 625059, 3234886, 16753077)),
    (5, 6): (4, (14, 69, 654, 4996, 39677, 314973, 2503576, 19875546, 157824160, 1253169928)),
}


def _pairwise_error_probability(d: int, p: float) -> float:
    """Probability of choosing the wrong codeword at Hamming distance ``d``.

    ``p`` is the channel crossover probability (uncoded BER).
    """
    if p <= 0.0:
        return 0.0
    if p >= 0.5:
        return 0.5
    total = 0.0
    if d % 2 == 0:
        half = d // 2
        total += 0.5 * math.comb(d, half) * p**half * (1.0 - p) ** half
        start = half + 1
    else:
        start = (d + 1) // 2
    for k in range(start, d + 1):
        total += math.comb(d, k) * p**k * (1.0 - p) ** (d - k)
    return min(total, 1.0)


@lru_cache(maxsize=4096)
def _coded_ber_cached(rate_key: tuple[int, int], p_rounded: float) -> float:
    d_free, spectrum = _WEIGHT_SPECTRA[rate_key]
    bound = 0.0
    for offset, a_d in enumerate(spectrum):
        d = d_free + offset
        if a_d == 0:
            continue
        bound += a_d * _pairwise_error_probability(d, p_rounded)
    return min(0.5, bound)


def coded_bit_error_rate(rate: CodingRate, uncoded_ber: float) -> float:
    """Post-Viterbi bit error probability via the union bound.

    Args:
        rate: the punctured convolutional coding rate (1/2, 2/3, 3/4, 5/6).
        uncoded_ber: channel (pre-decoder) bit error probability in [0, 0.5].

    Returns:
        Estimated decoded BER, clipped to [0, 0.5].  The union bound is tight
        at the low BERs that matter for packet-error modelling and is clipped
        where it diverges (high channel BER), which the packet error model
        treats as certain loss anyway.

    Raises:
        ValueError: for an unsupported coding rate or out-of-range BER.
    """
    if not 0.0 <= uncoded_ber <= 0.5:
        raise ValueError(f"uncoded BER must be in [0, 0.5], got {uncoded_ber}")
    key = (rate.numerator, rate.denominator)
    if key not in _WEIGHT_SPECTRA:
        raise ValueError(f"unsupported coding rate {rate}")
    # Round to stabilise the cache; 1e-7 relative resolution is far below
    # any effect observable in packet-level experiments.
    p_rounded = round(uncoded_ber, 9)
    return _coded_ber_cached(key, p_rounded)


def packet_error_rate(coded_ber: float, length_bits: int) -> float:
    """Probability that a packet of ``length_bits`` contains >= 1 bit error.

    Assumes independent bit errors after interleaving, the standard
    system-level approximation: ``PER = 1 - (1 - BER)^L``.
    """
    if length_bits < 0:
        raise ValueError(f"length_bits must be >= 0, got {length_bits}")
    if coded_ber <= 0.0:
        return 0.0
    if coded_ber >= 0.5:
        return 1.0
    # log1p formulation avoids underflow for tiny BERs on long frames.
    return -math.expm1(length_bits * math.log1p(-coded_ber))


SUPPORTED_RATES = (RATE_1_2, RATE_2_3, RATE_3_4, RATE_5_6)
