"""Optional compiled kernels for the session-batch decode hot path.

The three stages that dominate session-batch decode wall-clock — the
EESM effective-SINR reduction, the uncoded+coded BER evaluation, and
the outcome sampling comparison — are pure array math with no object
state.  This module packages each as a swappable *kernel* behind a
``kernel_tier`` selector:

* ``"numpy"`` — the reference tier.  Each kernel delegates to (or
  replicates operation-for-operation) the existing numpy code in
  :mod:`repro.phy.csi`, :mod:`repro.phy.modulation` and
  :mod:`repro.phy.coding`, so it is bitwise identical to today's fast
  path by construction.
* ``"numba"`` — ``@njit``-compiled loops (no ``fastmath``).  Requires
  the optional ``numba`` dependency (``pip install .[fast]``).
* ``"auto"`` — the default: ``"numba"`` when importable, else
  ``"numpy"``.  Code that threads ``kernel_tier`` through never needs
  to know whether the accelerator is installed.

Bitwise safety is enforced at *resolution time*, not assumed: when the
numba tier is built, every compiled kernel is checked bitwise against
its numpy twin on a deterministic probe battery covering all supported
modulations and coding rates.  A kernel whose compiled output differs
by even one ULP (libm vs. numpy SIMD transcendentals can do that) is
individually replaced by its numpy twin and listed in
:attr:`KernelSet.fallbacks` — the tier degrades per-kernel, never
per-module, and results stay bit-identical to the reference no matter
what the local numba/LLVM build produces.

Resolution is cached process-wide: probe verification and JIT
compilation run once per process, after which kernel dispatch is a
plain attribute access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

import numpy as np

from .coding import (
    TABLE_P_MIN,
    coded_bit_error_rate_batch,
    packet_error_rate_batch,
)
from .csi import EESM_BETA, eesm_effective_sinr_batch
from .mcs import Mcs, vht_mcs
from .modulation import Modulation

__all__ = ["HAVE_NUMBA", "KERNEL_TIERS", "KernelSet", "get_kernels"]

#: Valid values for the ``kernel_tier`` knob.
KERNEL_TIERS = ("auto", "numpy", "numba")

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAVE_NUMBA = False


@dataclass(frozen=True)
class KernelSet:
    """A resolved set of decode kernels.

    Attributes:
        tier: the tier that actually ran resolution — ``"numpy"`` or
            ``"numba"`` (``"auto"`` resolves to one of the two).
        eesm: ``(sinrs_2d, modulation) -> (k,) effective SINRs`` — the
            row-wise EESM reduction
            (:func:`repro.phy.csi.eesm_effective_sinr_batch`).
        mpdu_success: ``(mcs, mpdu_bits, sinrs) -> success probs`` —
            uncoded BER, coded-BER table interpolation and packet error
            rate fused into one call (the fast path of
            :func:`repro.phy.error_model.mpdu_success_probabilities`).
        sample_outcomes: ``(uniforms, probabilities) -> bool array`` —
            the outcome sampling comparison.
        fallbacks: names of kernels that failed the bitwise probe check
            and were replaced by their numpy twins (empty for the numpy
            tier; diagnostics only, results are unaffected).
    """

    tier: str
    eesm: Callable[[np.ndarray, Modulation], np.ndarray]
    mpdu_success: Callable[[Mcs, Any, np.ndarray], np.ndarray]
    sample_outcomes: Callable[[np.ndarray, np.ndarray], np.ndarray]
    fallbacks: tuple[str, ...] = field(default=(), compare=False)


# --------------------------------------------------------------------------
# numpy tier: delegate to the existing reference implementations.


def _numpy_eesm(
    sinrs_2d: np.ndarray, modulation: Modulation
) -> np.ndarray:
    return eesm_effective_sinr_batch(sinrs_2d, modulation)


def _numpy_mpdu_success(mcs: Mcs, mpdu_bits, sinrs) -> np.ndarray:
    # Operation-for-operation the fast path of
    # error_model.mpdu_success_probabilities (which dispatches here).
    sinrs = np.asarray(sinrs, dtype=float)
    uncoded = mcs.modulation.bit_error_rate_array(np.maximum(sinrs, 0.0))
    coded = coded_bit_error_rate_batch(mcs.coding_rate, uncoded)
    return 1.0 - packet_error_rate_batch(coded, np.asarray(mpdu_bits))


def _numpy_sample_outcomes(
    uniforms: np.ndarray, probabilities: np.ndarray
) -> np.ndarray:
    return uniforms < probabilities


_NUMPY_KERNELS = KernelSet(
    tier="numpy",
    eesm=_numpy_eesm,
    mpdu_success=_numpy_mpdu_success,
    sample_outcomes=_numpy_sample_outcomes,
)


# --------------------------------------------------------------------------
# numba tier: @njit loop kernels wrapped with the reference validation.
#
# The jitted reductions replicate numpy's pairwise summation blocking
# (naive <= 8 elements, 8-way unrolled <= 128, recursive halving above)
# so the only remaining bitwise hazard is the transcendental library;
# the probe battery decides per kernel whether that hazard is real on
# this build.


def _pairwise_sum_spec():
    """Plain-Python source of the pairwise summation helper.

    Mirrors numpy's reduction blocking so the jitted EESM mean has a
    real chance of matching the reference bitwise; returned as source
    so the numba build can compile it without importing numba here.
    """

    def pairwise(values, lo, hi):
        n = hi - lo
        if n < 8:
            acc = 0.0
            for i in range(lo, hi):
                acc += values[i]
            return acc
        if n <= 128:
            r0 = values[lo]
            r1 = values[lo + 1]
            r2 = values[lo + 2]
            r3 = values[lo + 3]
            r4 = values[lo + 4]
            r5 = values[lo + 5]
            r6 = values[lo + 6]
            r7 = values[lo + 7]
            i = lo + 8
            while i < lo + (n - n % 8):
                r0 += values[i]
                r1 += values[i + 1]
                r2 += values[i + 2]
                r3 += values[i + 3]
                r4 += values[i + 4]
                r5 += values[i + 5]
                r6 += values[i + 6]
                r7 += values[i + 7]
                i += 8
            acc = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
            while i < hi:
                acc += values[i]
                i += 1
            return acc
        half = n // 2
        half -= half % 8
        return pairwise(values, lo, lo + half) + pairwise(
            values, lo + half, hi
        )

    return pairwise


def _build_numba_impls():  # pragma: no cover - requires numba
    """Compile the @njit kernel bodies (once per process)."""
    njit = numba.njit

    pairwise = njit(cache=False)(_pairwise_sum_spec())

    @njit(cache=False)
    def eesm_jit(sinrs, beta):
        k, n = sinrs.shape
        out = np.empty(k)
        shifted = np.empty(n)
        for i in range(k):
            minimum = sinrs[i, 0]
            for j in range(1, n):
                if sinrs[i, j] < minimum:
                    minimum = sinrs[i, j]
            for j in range(n):
                shifted[j] = math.exp(-(sinrs[i, j] - minimum) / beta)
            out[i] = minimum - beta * math.log(pairwise(shifted, 0, n) / n)
        return out

    @njit(cache=False)
    def mpdu_success_jit(
        sinrs,
        bits,
        kind,
        m,
        bits_per_symbol,
        log_p_grid,
        log_coded_grid,
        table_p_min,
    ):
        # kind: 0 = BPSK, 1 = QPSK, 2 = square QAM.
        n = sinrs.size
        out = np.empty(n)
        inv_sqrt2 = 1.0 / math.sqrt(2.0)
        grid_n = log_p_grid.size
        grid_lo = log_p_grid[0]
        grid_step = (log_p_grid[grid_n - 1] - grid_lo) / (grid_n - 1)
        for i in range(n):
            snr = sinrs[i]
            if snr < 0.0:
                snr = 0.0
            # Uncoded BER (same closed forms as bit_error_rate_array).
            if snr == 0.0:
                uncoded = 0.5
            elif kind == 0:
                uncoded = 0.5 * math.erfc(math.sqrt(2.0 * snr) * inv_sqrt2)
            elif kind == 1:
                uncoded = 0.5 * math.erfc(math.sqrt(snr) * inv_sqrt2)
            else:
                arg = math.sqrt(3.0 * snr / (m - 1.0))
                ser_factor = (
                    4.0
                    * (1.0 - 1.0 / math.sqrt(m))
                    * (0.5 * math.erfc(arg * inv_sqrt2))
                )
                uncoded = min(0.5, ser_factor / bits_per_symbol)
            # Coded BER via the log-log union-bound table.
            if uncoded > table_p_min:
                x = math.log(uncoded)
                pos = (x - grid_lo) / grid_step
                j = int(pos)
                if j < 0:
                    j = 0
                elif j > grid_n - 2:
                    j = grid_n - 2
                x0 = log_p_grid[j]
                x1 = log_p_grid[j + 1]
                y0 = log_coded_grid[j]
                y1 = log_coded_grid[j + 1]
                slope = (y1 - y0) / (x1 - x0)
                coded = min(0.5, math.exp(y0 + slope * (x - x0)))
            else:
                coded = 0.0
            # Packet error rate (log1p/expm1 formulation).
            if coded <= 0.0:
                per = 0.0
            elif coded >= 0.5:
                per = 1.0
            else:
                per = -math.expm1(bits[i] * math.log1p(-coded))
            out[i] = 1.0 - per
        return out

    return eesm_jit, mpdu_success_jit


def _modulation_kind(modulation: Modulation) -> int:
    if modulation is Modulation.BPSK:
        return 0
    if modulation is Modulation.QPSK:
        return 1
    return 2


def _make_numba_kernels():  # pragma: no cover - requires numba
    """Wrap the jitted bodies with the reference validation/shaping."""
    from .coding import _WEIGHT_SPECTRA, _coded_ber_table

    eesm_jit, mpdu_success_jit = _build_numba_impls()

    def numba_eesm(sinrs_2d, modulation):
        sinrs = np.ascontiguousarray(sinrs_2d, dtype=float)
        if sinrs.ndim != 2 or sinrs.shape[1] == 0:
            raise ValueError(
                f"need a (k, n_subcarriers) matrix, got shape {sinrs.shape}"
            )
        if np.any(sinrs < 0):
            raise ValueError("SINRs must be non-negative")
        return eesm_jit(sinrs, EESM_BETA[modulation])

    def numba_mpdu_success(mcs, mpdu_bits, sinrs):
        sinrs = np.asarray(sinrs, dtype=float)
        key = (mcs.coding_rate.numerator, mcs.coding_rate.denominator)
        if key not in _WEIGHT_SPECTRA:
            raise ValueError(f"unsupported coding rate {mcs.coding_rate}")
        log_p_grid, log_coded_grid = _coded_ber_table(key)
        bits = np.broadcast_to(
            np.asarray(mpdu_bits, dtype=float), sinrs.shape
        )
        flat = mpdu_success_jit(
            np.ascontiguousarray(sinrs.ravel()),
            np.ascontiguousarray(bits.ravel()),
            _modulation_kind(mcs.modulation),
            float(mcs.modulation.constellation_size),
            float(mcs.modulation.bits_per_symbol),
            log_p_grid,
            log_coded_grid,
            TABLE_P_MIN,
        )
        return flat.reshape(sinrs.shape)

    return numba_eesm, numba_mpdu_success


# --------------------------------------------------------------------------
# Probe battery: deterministic inputs that exercise every supported
# modulation / coding rate across the SINR ranges the simulator visits.


def _probe_sinr_matrix() -> np.ndarray:
    rng = np.random.default_rng(0x5EED_CAFE)
    # Mix of realistic linear SINRs: deep fades, mid-range, very strong.
    base = rng.uniform(0.0, 40.0, size=(17, 56))
    base[3] *= 1e-6
    base[5] *= 1e4
    base[7, :] = 0.0
    base[11, ::3] = 0.0
    return base


_PROBE_MCS = tuple(vht_mcs(i) for i in range(10))


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def _verify_eesm(candidate) -> bool:
    probe = _probe_sinr_matrix()
    for modulation in EESM_BETA:
        if not _bitwise_equal(
            candidate(probe, modulation), _numpy_eesm(probe, modulation)
        ):
            return False
    return True


def _verify_mpdu_success(candidate) -> bool:
    probe = _probe_sinr_matrix()
    bits = np.full(probe.shape, 12000.0)
    bits[::2] = 288.0
    for mcs in _PROBE_MCS:
        if not _bitwise_equal(
            candidate(mcs, bits, probe),
            _numpy_mpdu_success(mcs, bits, probe),
        ):
            return False
        # Scalar-bits broadcasting path.
        if not _bitwise_equal(
            candidate(mcs, 8000, probe[0]),
            _numpy_mpdu_success(mcs, 8000, probe[0]),
        ):
            return False
    return True


@lru_cache(maxsize=1)
def _resolve_numba_kernels() -> KernelSet:  # pragma: no cover
    """Build, probe-verify and (where needed) fall back, once."""
    fallbacks = []
    try:
        numba_eesm, numba_mpdu_success = _make_numba_kernels()
    except Exception:
        # Compilation itself failed (broken LLVM, unsupported numba
        # version): the whole tier degrades to the numpy twins.
        return KernelSet(
            tier="numba",
            eesm=_numpy_eesm,
            mpdu_success=_numpy_mpdu_success,
            sample_outcomes=_numpy_sample_outcomes,
            fallbacks=("eesm", "mpdu_success"),
        )
    try:
        eesm_ok = _verify_eesm(numba_eesm)
    except Exception:
        eesm_ok = False
    if not eesm_ok:
        numba_eesm = _numpy_eesm
        fallbacks.append("eesm")
    try:
        success_ok = _verify_mpdu_success(numba_mpdu_success)
    except Exception:
        success_ok = False
    if not success_ok:
        numba_mpdu_success = _numpy_mpdu_success
        fallbacks.append("mpdu_success")
    return KernelSet(
        tier="numba",
        eesm=numba_eesm,
        mpdu_success=numba_mpdu_success,
        # The comparison kernel is a single vectorized `<`; there is
        # nothing to fuse, so every tier shares the numpy form.
        sample_outcomes=_numpy_sample_outcomes,
        fallbacks=tuple(fallbacks),
    )


def get_kernels(tier: str = "auto") -> KernelSet:
    """Resolve a ``kernel_tier`` value to a verified :class:`KernelSet`.

    Args:
        tier: ``"numpy"`` (reference), ``"numba"`` (compiled; raises
            when numba is not importable), or ``"auto"`` (compiled when
            available, reference otherwise).

    Returns:
        A cached, probe-verified kernel set.  All tiers produce bitwise
        identical outputs; the probe gate enforces this at resolution
        time (see module docstring).

    Raises:
        ValueError: for an unknown tier name.
        RuntimeError: for ``tier="numba"`` without numba installed.
    """
    if tier not in KERNEL_TIERS:
        raise ValueError(
            f"kernel_tier must be one of {KERNEL_TIERS}, got {tier!r}"
        )
    if tier == "numpy":
        return _NUMPY_KERNELS
    if tier == "numba":
        if not HAVE_NUMBA:
            raise RuntimeError(
                "kernel_tier='numba' requires the optional numba "
                "dependency (pip install 'repro[fast]')"
            )
        return _resolve_numba_kernels()
    # auto
    if HAVE_NUMBA:  # pragma: no cover - requires numba
        return _resolve_numba_kernels()
    return _NUMPY_KERNELS
