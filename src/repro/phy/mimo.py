"""MIMO spatial-stream separation and its fragility to tag perturbations.

The paper's testbed NICs are 3x3:3 (three spatial streams, §6.1).  MIMO
receivers separate streams by inverting the estimated channel matrix; a
*rank-one* perturbation — exactly what a backscatter tag adds, since its
reflection couples every TX antenna to every RX antenna through one
scatterer — is amplified by the matrix's conditioning when the stale
inverse is applied.  MOXcatter (MobiSys 2018) builds a whole system on
this fragility; for WiTAG it means a small |delta h| corrupts subframes
far more effectively than SISO math predicts.

This module quantifies that effect from first principles and thereby
grounds the ``mismatch_gain_db`` calibration knob of
:mod:`repro.phy.error_model`: :func:`mimo_fragility_db` measures, by Monte
Carlo over random channel realisations, how many dB of extra effective
mismatch power an N-stream receiver suffers relative to SISO for the same
physical tag perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..seeding import component_rng


@dataclass
class MimoChannelMatrix:
    """An N x N narrowband MIMO channel with Rician statistics.

    Attributes:
        n_streams: antenna/stream count (1-4).
        rician_k_db: K-factor; the LOS component is a rank-one outer
            product (as for a dominant direct path), scatter is iid.
        rng: randomness source.
    """

    n_streams: int = 3
    rician_k_db: float = 10.0
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("mimo")
    )

    def __post_init__(self) -> None:
        if not 1 <= self.n_streams <= 4:
            raise ValueError(
                f"n_streams must be 1-4, got {self.n_streams}"
            )

    def sample(self) -> np.ndarray:
        """Draw one unit-average-power channel matrix H."""
        n = self.n_streams
        k = 10.0 ** (self.rician_k_db / 10.0)
        phase_tx = np.exp(2j * np.pi * self.rng.random(n))
        phase_rx = np.exp(2j * np.pi * self.rng.random(n))
        los = np.outer(phase_rx, phase_tx)
        scatter = (
            self.rng.normal(size=(n, n)) + 1j * self.rng.normal(size=(n, n))
        ) / np.sqrt(2.0)
        return np.sqrt(k / (k + 1.0)) * los + np.sqrt(1.0 / (k + 1.0)) * scatter

    def sample_tag_perturbation(self, amplitude: float) -> np.ndarray:
        """Rank-one perturbation delta-H of given Frobenius amplitude.

        The tag is a single scatterer: its contribution is an outer
        product of the RX- and TX-side steering vectors.
        """
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        n = self.n_streams
        a = np.exp(2j * np.pi * self.rng.random(n))
        b = np.exp(2j * np.pi * self.rng.random(n))
        outer = np.outer(a, b)
        return amplitude * outer / np.linalg.norm(outer)


def zf_stream_sinrs(
    h_actual: np.ndarray,
    h_estimate: np.ndarray,
    snr_linear: float,
) -> np.ndarray:
    """Per-stream post-zero-forcing SINR with a stale channel estimate.

    The receiver applies ``W = pinv(h_estimate)``; the received streams are
    ``W (h_actual s + n) = s + W (h_actual - h_estimate) s + W n``, so each
    stream sees inter-stream leakage through the estimation error plus
    coloured noise.

    Args:
        h_actual: true channel during the subframe.
        h_estimate: the (preamble-time) estimate used for separation.
        snr_linear: per-stream transmit SNR.

    Returns:
        Array of linear SINRs, one per stream.
    """
    if h_actual.shape != h_estimate.shape or h_actual.ndim != 2:
        raise ValueError("channel matrices must share a square shape")
    if snr_linear <= 0:
        raise ValueError(f"SNR must be > 0, got {snr_linear}")
    w = np.linalg.pinv(h_estimate)
    leakage = w @ (h_actual - h_estimate)
    n = h_actual.shape[0]
    sinrs = np.empty(n)
    for i in range(n):
        # Signal: the desired (diagonal) coefficient is 1 + leakage_ii.
        interference = float(np.sum(np.abs(leakage[i, :]) ** 2))
        noise = float(np.sum(np.abs(w[i, :]) ** 2)) / snr_linear
        sinrs[i] = 1.0 / (interference + noise)
    return sinrs


def effective_mismatch_power(
    h_actual: np.ndarray, h_estimate: np.ndarray
) -> float:
    """Mean per-stream interference power from a stale estimate (no noise)."""
    w = np.linalg.pinv(h_estimate)
    leakage = w @ (h_actual - h_estimate)
    return float(np.mean(np.sum(np.abs(leakage) ** 2, axis=1)))


def mimo_fragility_db(
    n_streams: int,
    *,
    perturbation_amplitude: float = 0.01,
    rician_k_db: float = 15.0,
    n_trials: int = 200,
    seed: int = 0,
) -> float:
    """Extra effective mismatch power (dB) of N-stream ZF vs SISO.

    For each trial, draws a channel and a rank-one tag perturbation of
    fixed physical size, and compares the post-separation interference
    power with the SISO equivalent (|delta h|^2 / |h|^2 for matched
    average channel gain).  Returns the median ratio in dB.

    Fragility is governed by the channel's conditioning: a strong LOS
    component makes H nearly rank-one and the ZF inverse explosive.  At
    the K = 15 dB typical of the paper's indoor LOS testbed, 3x3 lands
    near 10 dB — the MIMO share of the ``mismatch_gain_db`` calibration
    in :mod:`repro.phy.error_model`; richly scattered channels (low K)
    show little amplification.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    model = MimoChannelMatrix(
        n_streams=n_streams,
        rician_k_db=rician_k_db,
        rng=np.random.default_rng(seed),
    )
    siso = MimoChannelMatrix(
        n_streams=1,
        rician_k_db=rician_k_db,
        rng=np.random.default_rng(seed + 1),
    )
    ratios = []
    for _ in range(n_trials):
        h = model.sample()
        delta = model.sample_tag_perturbation(perturbation_amplitude)
        mimo_power = effective_mismatch_power(h + delta, h)
        h1 = siso.sample()
        delta1 = siso.sample_tag_perturbation(perturbation_amplitude)
        siso_power = effective_mismatch_power(h1 + delta1, h1)
        if siso_power > 0:
            ratios.append(mimo_power / siso_power)
    median = float(np.median(ratios))
    return 10.0 * float(np.log10(max(median, 1e-12)))
