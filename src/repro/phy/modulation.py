"""Modulation schemes and analytic bit-error-rate curves.

802.11n/ac use BPSK, QPSK, 16-QAM, 64-QAM and (VHT only) 256-QAM on each
OFDM data subcarrier.  WiTAG never demodulates symbols itself — the whole
point of the paper is that the tag operates above the PHY — but the
*simulation substrate* needs accurate uncoded BER curves to decide whether
an MPDU survives the channel, both in the benign case (no tag activity) and
when the tag has invalidated the receiver's channel estimate.

The closed forms below are the standard AWGN expressions built from the
Gaussian Q-function (see Proakis, *Digital Communications*):

* BPSK:   ``Pb = Q(sqrt(2 * snr))``
* QPSK:   same per-bit error rate as BPSK (Gray-coded quadrature).
* M-QAM:  ``Pb ~= 4/log2(M) * (1 - 1/sqrt(M)) * Q(sqrt(3*snr/(M-1)))``

where ``snr`` is the per-symbol signal-to-noise ratio (Es/N0).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfc


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P[N(0,1) > x]."""
    return 0.5 * float(erfc(x / math.sqrt(2.0)))


class Modulation(enum.Enum):
    """Subcarrier modulations used by 802.11n/ac MCS indices."""

    BPSK = "BPSK"
    QPSK = "QPSK"
    QAM16 = "16-QAM"
    QAM64 = "64-QAM"
    QAM256 = "256-QAM"

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits carried per subcarrier per OFDM symbol."""
        return _BITS[self]

    @property
    def constellation_size(self) -> int:
        """Number of constellation points (M)."""
        return 2 ** self.bits_per_symbol

    def bit_error_rate(self, snr_linear: float) -> float:
        """Uncoded bit error probability on an AWGN channel.

        Args:
            snr_linear: per-symbol SNR (Es/N0) as a linear ratio, >= 0.

        Returns:
            Probability in [0, 0.5] that a single coded bit is received in
            error before FEC decoding.
        """
        if snr_linear < 0:
            raise ValueError(f"SNR must be non-negative, got {snr_linear}")
        if snr_linear == 0.0:
            return 0.5
        if self in (Modulation.BPSK, Modulation.QPSK):
            # QPSK per-bit SNR equals Es/(2*N0); the per-bit error rate
            # matches BPSK when expressed in Eb/N0.  Using Es/N0 here:
            if self is Modulation.BPSK:
                return q_function(math.sqrt(2.0 * snr_linear))
            return q_function(math.sqrt(snr_linear))
        m = self.constellation_size
        k = self.bits_per_symbol
        arg = math.sqrt(3.0 * snr_linear / (m - 1))
        ser_factor = 4.0 * (1.0 - 1.0 / math.sqrt(m)) * q_function(arg)
        return min(0.5, ser_factor / k)

    def bit_error_rate_array(self, snr_linear) -> "np.ndarray":
        """Vectorized :meth:`bit_error_rate` over an array of SNRs.

        Applies the same closed forms elementwise (identical operations,
        so scalar and array evaluations agree bitwise); used by the
        vectorized PHY fast path to price a whole A-MPDU in one call.

        Args:
            snr_linear: array-like of per-symbol SNRs (Es/N0), all >= 0.

        Returns:
            Array of uncoded BERs in [0, 0.5], same shape as the input.
        """
        snr = np.asarray(snr_linear, dtype=float)
        if np.any(snr < 0):
            raise ValueError("SNRs must be non-negative")
        if self in (Modulation.BPSK, Modulation.QPSK):
            scaled = 2.0 * snr if self is Modulation.BPSK else snr
            ber = 0.5 * erfc(np.sqrt(scaled) / math.sqrt(2.0))
        else:
            m = self.constellation_size
            k = self.bits_per_symbol
            arg = np.sqrt(3.0 * snr / (m - 1))
            ser_factor = (
                4.0
                * (1.0 - 1.0 / math.sqrt(m))
                * (0.5 * erfc(arg / math.sqrt(2.0)))
            )
            ber = np.minimum(0.5, ser_factor / k)
        return np.where(snr == 0.0, 0.5, ber)

    def symbol_error_rate(self, snr_linear: float) -> float:
        """Uncoded symbol error probability on an AWGN channel."""
        if snr_linear < 0:
            raise ValueError(f"SNR must be non-negative, got {snr_linear}")
        if snr_linear == 0.0:
            return 1.0 - 1.0 / self.constellation_size
        if self is Modulation.BPSK:
            return q_function(math.sqrt(2.0 * snr_linear))
        if self is Modulation.QPSK:
            p = q_function(math.sqrt(snr_linear))
            return 1.0 - (1.0 - p) ** 2
        m = self.constellation_size
        sqrt_m = math.sqrt(m)
        p = 2.0 * (1.0 - 1.0 / sqrt_m) * q_function(
            math.sqrt(3.0 * snr_linear / (m - 1))
        )
        return 1.0 - (1.0 - p) ** 2


_BITS = {
    Modulation.BPSK: 1,
    Modulation.QPSK: 2,
    Modulation.QAM16: 4,
    Modulation.QAM64: 6,
    Modulation.QAM256: 8,
}


@dataclass(frozen=True)
class CodingRate:
    """Binary convolutional coding rate expressed as a fraction k/n."""

    numerator: int
    denominator: int

    def __post_init__(self) -> None:
        if not (0 < self.numerator <= self.denominator):
            raise ValueError(
                f"invalid coding rate {self.numerator}/{self.denominator}"
            )

    @property
    def value(self) -> float:
        """The rate as a float in (0, 1]."""
        return self.numerator / self.denominator

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.numerator}/{self.denominator}"


#: The coding rates used by 802.11n/ac MCSs.
RATE_1_2 = CodingRate(1, 2)
RATE_2_3 = CodingRate(2, 3)
RATE_3_4 = CodingRate(3, 4)
RATE_5_6 = CodingRate(5, 6)


def snr_db_to_linear(snr_db: float) -> float:
    """Convert an SNR in decibels to a linear power ratio."""
    return 10.0 ** (snr_db / 10.0)


def snr_linear_to_db(snr_linear: float) -> float:
    """Convert a linear SNR to decibels.

    Raises:
        ValueError: if the ratio is not strictly positive.
    """
    if snr_linear <= 0:
        raise ValueError(f"linear SNR must be > 0, got {snr_linear}")
    return 10.0 * math.log10(snr_linear)
