"""802.11n/ac physical-layer substrate.

Provides the OFDM timing, MCS rate tables, channel models, CSI estimation
and per-MPDU error models on which the WiTAG reproduction is built.  See
DESIGN.md for how each piece substitutes for the paper's hardware testbed.
"""

from .airtime import PpduTiming, SubframeSchedule, ppdu_airtime, subframe_schedule
from .channel import (
    BackscatterChannel,
    ChannelGeometry,
    PathLossModel,
    TagAntenna,
    TagState,
)
from .coding import coded_bit_error_rate, packet_error_rate
from .constants import Band, MAX_AMPDU_SUBFRAMES
from .csi import CsiEstimate, eesm_effective_sinr, estimate_csi, per_subcarrier_sinr
from .error_model import FadingSample, LinkErrorModel, mpdu_success_probability
from .fading import CorrelatedFadingChannel, GaussMarkovFading
from .mcs import Mcs, highest_reliable_mcs, ht_mcs, vht_mcs
from .modulation import CodingRate, Modulation, snr_db_to_linear, snr_linear_to_db
from .noise import ReceiverNoise, dbm_to_watts, thermal_noise_dbm, watts_to_dbm
from .preamble import PhyFormat, PreambleInfo, preamble_info
from .waveform import OfdmModem, TagChannelWaveform, run_corruption_experiment

__all__ = [
    "Band",
    "BackscatterChannel",
    "ChannelGeometry",
    "CodingRate",
    "CorrelatedFadingChannel",
    "CsiEstimate",
    "FadingSample",
    "GaussMarkovFading",
    "LinkErrorModel",
    "MAX_AMPDU_SUBFRAMES",
    "Mcs",
    "Modulation",
    "OfdmModem",
    "PathLossModel",
    "PhyFormat",
    "PpduTiming",
    "PreambleInfo",
    "ReceiverNoise",
    "SubframeSchedule",
    "TagAntenna",
    "TagChannelWaveform",
    "TagState",
    "coded_bit_error_rate",
    "dbm_to_watts",
    "eesm_effective_sinr",
    "estimate_csi",
    "highest_reliable_mcs",
    "ht_mcs",
    "mpdu_success_probability",
    "packet_error_rate",
    "per_subcarrier_sinr",
    "ppdu_airtime",
    "run_corruption_experiment",
    "preamble_info",
    "snr_db_to_linear",
    "snr_linear_to_db",
    "subframe_schedule",
    "thermal_noise_dbm",
    "vht_mcs",
    "watts_to_dbm",
]
