"""PHY preamble structure and timing for HT (802.11n) and VHT (802.11ac).

The preamble matters enormously to WiTAG: the receiver estimates the channel
from the training fields at the *start* of the PHY frame and then uses that
single estimate for every subframe in the A-MPDU (paper §3.2, §5).  A tag
that keeps its reflection constant through the preamble and flips it during
subframe *k* therefore invalidates the estimate for subframe *k* only.

This module computes preamble composition and duration, and exposes the
training-field window so the tag model knows when it must hold its
reflection state steady.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .constants import (
    HT_LTF_S,
    HT_SIG_S,
    HT_STF_S,
    LEGACY_PREAMBLE_S,
    VHT_LTF_S,
    VHT_SIG_A_S,
    VHT_SIG_B_S,
    VHT_STF_S,
)


class PhyFormat(enum.Enum):
    """PPDU format; WiTAG works with both HT and VHT (and by extension HE)."""

    HT_MIXED = "HT-mixed"
    VHT = "VHT"


#: Number of long training fields required per spatial-stream count.  The
#: standard maps {1:1, 2:2, 3:4, 4:4} (HT-LTFs come in powers of two above 2).
_LTF_COUNT = {1: 1, 2: 2, 3: 4, 4: 4}


@dataclass(frozen=True)
class PreambleInfo:
    """Timing decomposition of a PPDU preamble.

    Attributes:
        phy_format: HT or VHT.
        spatial_streams: number of space-time streams.
        legacy_s: duration of the legacy L-STF+L-LTF+L-SIG portion.
        signaling_s: HT-SIG or VHT-SIG-A/B duration.
        training_s: duration of the (HT/VHT)-STF and LTF fields.
    """

    phy_format: PhyFormat
    spatial_streams: int
    legacy_s: float
    signaling_s: float
    training_s: float

    @property
    def total_s(self) -> float:
        """Total preamble duration in seconds."""
        return self.legacy_s + self.signaling_s + self.training_s

    @property
    def channel_estimation_end_s(self) -> float:
        """Offset from PPDU start at which channel estimation completes.

        A WiTAG tag must not change its reflection state before this point,
        otherwise the corrupted estimate would affect *all* subframes.
        """
        return self.total_s


def preamble_info(
    phy_format: PhyFormat, spatial_streams: int = 1
) -> PreambleInfo:
    """Compute preamble composition for a format and stream count.

    Raises:
        ValueError: if ``spatial_streams`` is outside 1-4.
    """
    if spatial_streams not in _LTF_COUNT:
        raise ValueError(
            f"spatial streams must be in {sorted(_LTF_COUNT)}, "
            f"got {spatial_streams}"
        )
    n_ltf = _LTF_COUNT[spatial_streams]
    if phy_format is PhyFormat.HT_MIXED:
        signaling = HT_SIG_S
        training = HT_STF_S + n_ltf * HT_LTF_S
    else:
        signaling = VHT_SIG_A_S + VHT_SIG_B_S
        training = VHT_STF_S + n_ltf * VHT_LTF_S
    return PreambleInfo(
        phy_format=phy_format,
        spatial_streams=spatial_streams,
        legacy_s=LEGACY_PREAMBLE_S,
        signaling_s=signaling,
        training_s=training,
    )
