"""Waveform-level OFDM simulation: the corruption mechanism in IQ samples.

Everything else in `repro.phy` works at the SINR abstraction.  This module
validates that abstraction from below: it generates actual OFDM sample
streams (IFFT + cyclic prefix), passes them through a channel whose tag
component switches state mid-frame, runs a genuine receiver (LTF-based
least-squares channel estimation, one-tap equalization, hard demapping),
and counts symbol errors per OFDM symbol.

The headline result — the reason WiTAG works — falls straight out: with
the tag holding its preamble-time state, symbols decode cleanly; for the
symbols transmitted while the tag has flipped its reflection phase, the
stale channel estimate mis-equalizes and errors concentrate *exactly
there* (test: ``tests/test_phy_waveform.py``).

Kept deliberately compact: 64-point FFT, the HT-20 occupied-tone layout,
BPSK/QPSK/16-QAM mappings, flat or tag-perturbed channels.  This is a
physics cross-check, not a second simulator — system experiments should
use the fast SINR-level models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..seeding import component_rng
from .channel import TagState

#: FFT size for 20 MHz 802.11 OFDM.
FFT_SIZE = 64

#: Cyclic prefix length (long GI: 16 samples = 0.8 us at 20 MS/s).
CP_LENGTH = 16

#: Occupied data tones (simplified HT-20 layout, DC and edges null).
DATA_TONES = np.concatenate([np.arange(-26, 0), np.arange(1, 27)])


def _qam_constellation(bits_per_symbol: int) -> np.ndarray:
    """Gray-ish constellation for 1, 2 or 4 bits per symbol, unit power."""
    if bits_per_symbol == 1:
        return np.array([-1.0, 1.0], dtype=complex)
    if bits_per_symbol == 2:
        points = np.array([-1 - 1j, -1 + 1j, 1 - 1j, 1 + 1j])
        return points / np.sqrt(2.0)
    if bits_per_symbol == 4:
        level = np.array([-3, -1, 3, 1])  # Gray order
        points = np.array([complex(i, q) for i in level for q in level])
        return points / np.sqrt(10.0)
    raise ValueError(
        f"unsupported bits per symbol {bits_per_symbol} (use 1, 2 or 4)"
    )


@dataclass
class OfdmModem:
    """A minimal OFDM modulator/demodulator over the HT-20 tone layout.

    Attributes:
        bits_per_symbol: constellation density (1 = BPSK, 2 = QPSK,
            4 = 16-QAM).
    """

    bits_per_symbol: int = 2

    def __post_init__(self) -> None:
        self._constellation = _qam_constellation(self.bits_per_symbol)

    @property
    def bits_per_ofdm_symbol(self) -> int:
        """Payload bits carried by one OFDM symbol."""
        return self.bits_per_symbol * DATA_TONES.size

    def _map(self, bits: np.ndarray) -> np.ndarray:
        grouped = np.asarray(bits).reshape(-1, self.bits_per_symbol)
        values = np.zeros(grouped.shape[0], dtype=int)
        for column in range(self.bits_per_symbol):
            values = (values << 1) | grouped[:, column]
        return self._constellation[values]

    def _demap(self, symbols: np.ndarray) -> np.ndarray:
        distances = np.abs(
            symbols[:, None] - self._constellation[None, :]
        )
        indices = np.argmin(distances, axis=1)
        bits = np.zeros(
            (len(symbols), self.bits_per_symbol), dtype=int
        )
        for column in range(self.bits_per_symbol):
            shift = self.bits_per_symbol - 1 - column
            bits[:, column] = (indices >> shift) & 1
        return bits.reshape(-1)

    def modulate_symbol(self, bits: np.ndarray) -> np.ndarray:
        """One OFDM symbol (with CP) from ``bits_per_ofdm_symbol`` bits."""
        if len(bits) != self.bits_per_ofdm_symbol:
            raise ValueError(
                f"need {self.bits_per_ofdm_symbol} bits, got {len(bits)}"
            )
        freq = np.zeros(FFT_SIZE, dtype=complex)
        freq[DATA_TONES % FFT_SIZE] = self._map(np.asarray(bits))
        time = np.fft.ifft(freq) * np.sqrt(FFT_SIZE)
        return np.concatenate([time[-CP_LENGTH:], time])

    def demodulate_symbol(
        self, samples: np.ndarray, channel_estimate: np.ndarray
    ) -> np.ndarray:
        """Bits from one received OFDM symbol, given a tone-domain estimate."""
        if len(samples) != FFT_SIZE + CP_LENGTH:
            raise ValueError(
                f"need {FFT_SIZE + CP_LENGTH} samples, got {len(samples)}"
            )
        freq = np.fft.fft(samples[CP_LENGTH:]) / np.sqrt(FFT_SIZE)
        tones = freq[DATA_TONES % FFT_SIZE]
        equalized = tones / channel_estimate
        return self._demap(equalized)

    def training_symbol(self) -> tuple[np.ndarray, np.ndarray]:
        """A known (LTF-like) training symbol and its tone values."""
        # Deliberately fixed: this is the *known* training sequence both
        # modem ends must agree on (a protocol constant), not randomness.
        rng = np.random.default_rng(0xC0FFEE)
        tone_bits = rng.integers(0, 2, DATA_TONES.size)
        tones = np.where(tone_bits == 1, 1.0 + 0j, -1.0 + 0j)
        freq = np.zeros(FFT_SIZE, dtype=complex)
        freq[DATA_TONES % FFT_SIZE] = tones
        time = np.fft.ifft(freq) * np.sqrt(FFT_SIZE)
        return np.concatenate([time[-CP_LENGTH:], time]), tones

    def estimate_channel(
        self, received_training: np.ndarray, known_tones: np.ndarray
    ) -> np.ndarray:
        """Least-squares per-tone channel estimate from the training symbol."""
        freq = np.fft.fft(received_training[CP_LENGTH:]) / np.sqrt(FFT_SIZE)
        return freq[DATA_TONES % FFT_SIZE] / known_tones


@dataclass
class TagChannelWaveform:
    """Applies a direct + switchable tag path to OFDM sample streams.

    Attributes:
        direct_gain: complex flat gain of the direct path.
        tag_gain: complex gain of the tag-reflected path (its strength).
        noise_std: per-sample complex-noise standard deviation.
        rng: randomness for the AWGN.
    """

    direct_gain: complex = 1.0 + 0.0j
    tag_gain: complex = 0.08 + 0.0j
    noise_std: float = 0.01
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("waveform")
    )

    def channel_gain(self, state: TagState) -> complex:
        """Flat channel gain with the tag in a given state."""
        return self.direct_gain + state.reflection_coefficient * self.tag_gain

    def apply(
        self, samples: np.ndarray, state: TagState
    ) -> np.ndarray:
        """Pass samples through the channel with the tag in ``state``."""
        noise = self.noise_std * (
            self.rng.normal(size=len(samples))
            + 1j * self.rng.normal(size=len(samples))
        ) / np.sqrt(2.0)
        return samples * self.channel_gain(state) + noise


def run_corruption_experiment(
    *,
    n_symbols: int = 20,
    flip_range: tuple[int, int] = (8, 12),
    bits_per_symbol: int = 4,
    tag_gain: complex = 0.25j,
    noise_std: float = 0.02,
    seed: int = 1,
) -> list[float]:
    """Transmit a frame while the tag flips its phase for some symbols.

    The receiver estimates the channel once, from a training symbol sent
    with the tag in its idle (``REFLECT_0``) state — exactly the WiTAG
    situation — and uses that stale estimate throughout.

    Two physical details determine whether the flip corrupts symbols, and
    both match the system-level model and the paper:

    * the flip must change the channel's *phase or magnitude enough to
      cross decision boundaries* — a tag path in quadrature with the
      direct path (the generic case; here the default ``0.25j``) rotates
      every constellation point by ``2 atan(|tag|/|direct|)``; and
    * denser constellations fall first — 16-QAM symbols are corrupted by
      rotations that BPSK shrugs off, which is why WiTAG queries use the
      highest reliable MCS (paper §4.1) and why this experiment defaults
      to 16-QAM.

    Returns:
        Per-OFDM-symbol bit error rates.  Symbols inside ``flip_range``
        (tag in ``REFLECT_180``) should show high error rates; the rest
        should be near zero.
    """
    if not 0 <= flip_range[0] <= flip_range[1] <= n_symbols:
        raise ValueError(f"invalid flip range {flip_range}")
    rng = np.random.default_rng(seed)
    modem = OfdmModem(bits_per_symbol=bits_per_symbol)
    channel = TagChannelWaveform(
        tag_gain=complex(tag_gain),
        noise_std=noise_std,
        rng=np.random.default_rng(seed + 1),
    )
    training, known_tones = modem.training_symbol()
    received_training = channel.apply(training, TagState.REFLECT_0)
    estimate = modem.estimate_channel(received_training, known_tones)

    error_rates: list[float] = []
    for index in range(n_symbols):
        bits = rng.integers(0, 2, modem.bits_per_ofdm_symbol)
        tx = modem.modulate_symbol(bits)
        state = (
            TagState.REFLECT_180
            if flip_range[0] <= index < flip_range[1]
            else TagState.REFLECT_0
        )
        rx = channel.apply(tx, state)
        decoded = modem.demodulate_symbol(rx, estimate)
        errors = int(np.sum(decoded != bits))
        error_rates.append(errors / len(bits))
    return error_rates
