"""Per-MPDU decode model under tag-induced channel mismatch.

This is where the PHY substrate meets WiTAG's mechanism.  For each subframe
of a query A-MPDU we ask: given the channel estimate the receiver formed
during the preamble (with the tag in its idle state) and the channel that
actually prevailed while this subframe was on the air (tag idle, or tag
flipped), what is the probability the subframe's FCS passes?

The pipeline is:

    channels (``repro.phy.channel``)
      -> preamble CSI estimate (``repro.phy.csi``)
      -> per-subcarrier post-equalization SINR
      -> EESM effective SINR
      -> uncoded BER (``repro.phy.modulation``)
      -> coded BER via union bound (``repro.phy.coding``)
      -> MPDU error probability ``1 - (1 - BER)^bits``

Calibration
-----------

An ideal zero-forcing equalizer understates how badly a real 802.11
receiver reacts to a *mid-frame* channel change.  Three effects, all absent
from the textbook math, amplify the damage in practice:

* **MIMO stream separation.**  The paper's testbed uses 3x3:3 adapters;
  spatial-stream demultiplexing inverts the channel matrix, so a rank-one
  perturbation is amplified by the matrix condition number (MOXcatter,
  MobiSys 2018, builds its entire design around this fragility).
* **Pilot tracking.**  Receivers track residual phase/frequency offset on
  pilot subcarriers; a step change in the channel derails these loops for
  many symbols.
* **Indoor multipath.**  The tag's perturbation reaches the receiver over
  every environmental path, not just the single geometric bounce of the
  bistatic radar equation.

Rather than simulate each, :class:`LinkErrorModel` exposes a single
documented knob, ``mismatch_gain_db``, that scales the *power* of the
tag-induced mismatch term.  The default (22 dB: approximately 12 dB MIMO
fragility + 5 dB pilot-tracking disturbance + 5 dB multipath) is calibrated so that the simulated LOS
BER-vs-position curve lands in the magnitude range of paper Figure 5; all
*relative* behaviour (the U-shape, NLOS ordering, design ablations) comes
from the physics, not from the knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

from ..perf import StageCounters
from ..seeding import component_rng
from .channel import BackscatterChannel, TagState
from .coding import coded_bit_error_rate, packet_error_rate
from .csi import (
    csi_noise_scale,
    eesm_effective_sinr,
    estimate_csi,
)
from .kernels import KernelSet, get_kernels
from .mcs import Mcs
from .noise import ReceiverNoise, dbm_to_watts


def mpdu_success_probability(
    mcs: Mcs, mpdu_bits: int, effective_sinr_linear: float
) -> float:
    """Probability that an MPDU of ``mpdu_bits`` passes its FCS.

    Args:
        mcs: modulation and coding of the PPDU.
        mpdu_bits: MPDU length in bits (header + payload + FCS).
        effective_sinr_linear: AWGN-equivalent SINR (post EESM).

    Returns:
        Success probability in [0, 1].
    """
    if mpdu_bits <= 0:
        raise ValueError(f"mpdu_bits must be > 0, got {mpdu_bits}")
    uncoded = mcs.modulation.bit_error_rate(max(effective_sinr_linear, 0.0))
    coded = coded_bit_error_rate(mcs.coding_rate, uncoded)
    return 1.0 - packet_error_rate(coded, mpdu_bits)


def mpdu_success_probabilities(
    mcs: Mcs,
    mpdu_bits,
    effective_sinrs_linear,
    *,
    exact: bool = False,
    kernels: KernelSet | None = None,
) -> np.ndarray:
    """Vectorized :func:`mpdu_success_probability` over many subframes.

    Args:
        mpdu_bits: MPDU length(s) in bits — scalar or array broadcastable
            against the SINR vector.
        effective_sinrs_linear: AWGN-equivalent SINRs (post EESM).
        exact: when True, evaluate the scalar reference per element
            (bit-identical to :func:`mpdu_success_probability`); when
            False (the fast path), use the vectorized uncoded-BER curve
            and the interpolated coded-BER table — accurate to ~1e-3
            relative on the coded BER, which is far below anything
            observable at packet level.
        kernels: the :class:`repro.phy.kernels.KernelSet` evaluating the
            fast path; defaults to the numpy reference tier.  Every tier
            is probe-verified bitwise against the reference, so the
            choice never changes results.

    Returns:
        Array of success probabilities in [0, 1].
    """
    sinrs = np.asarray(effective_sinrs_linear, dtype=float)
    bits = np.asarray(mpdu_bits)
    if np.any(bits <= 0):
        raise ValueError(f"mpdu_bits must be > 0, got {mpdu_bits}")
    if exact:
        bits_by_subframe = np.broadcast_to(bits, sinrs.shape)
        return np.array(
            [
                mpdu_success_probability(mcs, int(b), float(s))
                for b, s in zip(bits_by_subframe.ravel(), sinrs.ravel())
            ]
        ).reshape(sinrs.shape)
    if kernels is None:
        kernels = get_kernels("numpy")
    return kernels.mpdu_success(mcs, bits, sinrs)


@dataclass(frozen=True)
class FadingSample:
    """One coherence-interval snapshot of the channel's random state.

    Within a single A-MPDU the channel is coherent (frame time of a few
    milliseconds << ~100 ms coherence time, paper §5 footnote 2), so the
    same sample applies to the preamble and every subframe of one PPDU.
    """

    direct_gain: complex
    tag_fading: complex


@dataclass(frozen=True)
class FadingBatch:
    """Per-query fading samples for a whole session chunk.

    Row ``i`` holds the coherence-interval state of query ``i`` — the
    2-D decode APIs broadcast each row across that query's subframes
    exactly as :class:`FadingSample` is shared within one A-MPDU.
    """

    direct_gains: np.ndarray
    tag_fadings: np.ndarray

    def __post_init__(self) -> None:
        if self.direct_gains.shape != self.tag_fadings.shape:
            raise ValueError(
                "direct/tag fading shapes differ: "
                f"{self.direct_gains.shape} vs {self.tag_fadings.shape}"
            )

    def __len__(self) -> int:
        return int(self.direct_gains.shape[0])

    def sample(self, index: int) -> FadingSample:
        """The scalar :class:`FadingSample` view of row ``index``."""
        return FadingSample(
            direct_gain=complex(self.direct_gains[index]),
            tag_fading=complex(self.tag_fadings[index]),
        )


@dataclass
class LinkErrorModel:
    """Decode model for one client->AP link with a tag in the environment.

    Attributes:
        channel: the backscatter channel (geometry + tag reflection).
        mcs: MCS of query PPDUs.
        tx_power_dbm: client transmit power.
        receiver: AP receiver noise model.
        mismatch_gain_db: receiver-fragility / multipath calibration (see
            module docstring).  Applied to the power of the tag-induced
            channel mismatch only — never to thermal noise or to the
            benign (tag idle) case.
        rng: randomness source for CSI estimation noise and fading.
        counters: cumulative per-stage timing of the vectorized decode
            path (``channel``, ``csi``, ``eesm``, ``coding``); sampled
            once per A-MPDU, so the instrumentation overhead is a few
            microseconds per query.  The scalar reference methods are
            deliberately left un-instrumented.
        telemetry: optional :class:`repro.obs.Telemetry`; when attached,
            every effective-SINR evaluation feeds the
            ``phy_effective_sinr`` histogram.  All three tiers (scalar,
            per-query vectorized, session-batch 2-D) observe the same
            values in the same order, so histograms are tier-invariant.
        kernel_tier: which :mod:`repro.phy.kernels` implementation the
            vectorized decode stages run on — ``"numpy"``, ``"numba"``
            or ``"auto"`` (the default: compiled when numba is
            installed, reference otherwise).  Every tier is
            probe-verified bitwise against the numpy reference at
            resolution time, so this knob changes speed, never results.
    """

    channel: BackscatterChannel
    mcs: Mcs
    tx_power_dbm: float = 15.0
    receiver: ReceiverNoise = field(default_factory=ReceiverNoise)
    mismatch_gain_db: float = 22.0
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("error-model")
    )
    counters: StageCounters = field(default_factory=StageCounters, repr=False)
    telemetry: "Telemetry | None" = field(
        default=None, repr=False, compare=False
    )
    kernel_tier: str = "auto"

    def __post_init__(self) -> None:
        self._tx_ref_snr = (
            dbm_to_watts(self.tx_power_dbm) / self.receiver.noise_floor_w
        )
        self._mismatch_gain = 10.0 ** (self.mismatch_gain_db / 10.0)
        # Kernel resolution is lazy: "auto" with numba installed JIT-
        # compiles on first use, which scalar-only consumers never pay.
        self._kernel_set: KernelSet | None = None

    @property
    def kernels(self) -> KernelSet:
        """The resolved (cached) decode kernel set for this model."""
        if self._kernel_set is None:
            self._kernel_set = get_kernels(self.kernel_tier)
        return self._kernel_set

    @property
    def tx_referred_snr_linear(self) -> float:
        """``P_tx / N``: SNR before applying any channel gain."""
        return self._tx_ref_snr

    def received_snr_db(self, idle_state: TagState) -> float:
        """Mean received SNR (dB) across subcarriers with the tag idle."""
        h = self.channel.channel_vector(idle_state)
        rx = self._tx_ref_snr * float(np.mean(np.abs(h) ** 2))
        return 10.0 * float(np.log10(max(rx, 1e-30)))

    def sample_fading(self) -> FadingSample:
        """Draw the channel's random state for one coherence interval."""
        return FadingSample(
            direct_gain=self.channel.sample_direct_fading(),
            tag_fading=self.channel.sample_tag_fading(),
        )

    def sample_fading_batch(self, count: int) -> FadingBatch:
        """Draw ``count`` coherence intervals in exact scalar order.

        Bitwise equal, per row, to ``count`` sequential calls of
        :meth:`sample_fading` on the same generator state (see
        :meth:`repro.phy.channel.BackscatterChannel.sample_fading_batch`).
        """
        direct, tag = self.channel.sample_fading_batch(count)
        return FadingBatch(direct_gains=direct, tag_fadings=tag)

    def subframe_effective_sinrs_batch2d(
        self,
        preamble_state: TagState,
        subframe_state_rows: Sequence[Sequence[TagState]],
        fading: FadingBatch,
        *,
        rngs: Sequence[np.random.Generator] | None = None,
        _uniforms: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`subframe_effective_sinrs` for a whole session chunk.

        Computes every subframe SINR of ``n_queries`` A-MPDUs in one
        ``(n_queries, n_subframes)`` numpy pass.  Tag states are
        deduplicated across the *whole matrix* (the design only ever
        uses a handful of states, so the channel-change power is one
        ``(n_distinct, n_queries, n_subcarriers)`` stack), and all CSI
        noise is drawn as one row-major ``standard_normal`` buffer whose
        layout reproduces the scalar draw order (per query, per
        subframe: n real draws, n imaginary draws, then optionally the
        outcome uniform).  Given the same generator state, row ``q`` is
        bitwise equal to ``subframe_effective_sinrs(preamble_state,
        subframe_state_rows[q], fading.sample(q))``.

        Args:
            preamble_state: tag state during every PHY preamble.
            subframe_state_rows: per-query tag states; all rows must
                have equal length (one A-MPDU shape per chunk).
            fading: one coherence-interval sample per query.
            rngs: optional per-row generators (one per query row).
                When given, row ``q``'s CSI noise (and outcome
                uniforms) are drawn from ``rngs[q]`` instead of
                ``self.rng`` — the fleet engine uses this so each
                tag's row consumes that tag's own error stream,
                bitwise as the scalar per-tag loop would.  ``None``
                (the default) keeps the historical shared-generator
                path byte for byte.
            _uniforms: internal — a preallocated ``(n_queries,
                n_subframes)`` float array; when provided, one uniform
                per subframe is drawn into it after that subframe's
                noise draws, replicating the outcome stream.

        Returns:
            ``(n_queries, n_subframes)`` array of effective SINRs.
        """
        rows = [list(row) for row in subframe_state_rows]
        n_q = len(rows)
        if n_q != len(fading):
            raise ValueError(
                f"{n_q} state rows but {len(fading)} fading samples"
            )
        if n_q == 0:
            return np.empty((0, 0), dtype=float)
        k = len(rows[0])
        for row in rows:
            if len(row) != k:
                raise ValueError(
                    "all queries in a chunk must have the same subframe "
                    f"count, got {len(row)} vs {k}"
                )
        if k == 0:
            return np.empty((n_q, 0), dtype=float)

        start = time.perf_counter()
        h_preamble = self.channel.channel_vector_batch(
            preamble_state, fading.direct_gains, fading.tag_fadings
        )
        distinct: list[TagState] = []
        index_of: dict[TagState, int] = {}
        flat_codes: list[int] = []
        for row in rows:
            for state in row:
                j = index_of.get(state)
                if j is None:
                    j = index_of[state] = len(distinct)
                    distinct.append(state)
                flat_codes.append(j)
        codes = np.array(flat_codes, dtype=np.intp).reshape(n_q, k)
        change_sq = np.stack(
            [
                np.abs(
                    self.channel.channel_vector_batch(
                        state, fading.direct_gains, fading.tag_fadings
                    )
                    - h_preamble
                )
                ** 2
                for state in distinct
            ]
        )
        self.counters.add("channel", time.perf_counter() - start, n_q * k)

        start = time.perf_counter()
        n = h_preamble.shape[1]
        rx_snr = self._tx_ref_snr * np.mean(np.abs(h_preamble) ** 2, axis=1)
        scale = csi_noise_scale(
            h_preamble, np.maximum(rx_snr, 1e-12)[:, None]
        )
        buffer = np.empty((n_q, k, 2 * n))
        if rngs is not None and len(rngs) != n_q:
            raise ValueError(
                f"{n_q} state rows but {len(rngs)} per-row generators"
            )
        if _uniforms is None:
            if rngs is None:
                draw_normals = self.rng.standard_normal
                for q in range(n_q):
                    per_query = buffer[q]
                    for i in range(k):
                        draw_normals(out=per_query[i])
            else:
                for q in range(n_q):
                    per_query = buffer[q]
                    draw_normals = rngs[q].standard_normal
                    for i in range(k):
                        draw_normals(out=per_query[i])
        else:
            if rngs is None:
                draw_normals = self.rng.standard_normal
                draw_uniform = self.rng.random
                for q in range(n_q):
                    per_query = buffer[q]
                    uniform_row = _uniforms[q]
                    for i in range(k):
                        draw_normals(out=per_query[i])
                        uniform_row[i] = draw_uniform()
            else:
                for q in range(n_q):
                    per_query = buffer[q]
                    uniform_row = _uniforms[q]
                    rng = rngs[q]
                    draw_normals = rng.standard_normal
                    draw_uniform = rng.random
                    for i in range(k):
                        draw_normals(out=per_query[i])
                        uniform_row[i] = draw_uniform()
        # The matrices below are tens of MB per chunk, so the algebra
        # runs in place on a handful of scratch buffers.  Every rewrite
        # is bitwise-neutral: in-place multiply/add keep the scalar
        # expression's operand order up to commutativity (exact for
        # float multiply/add), and building the complex noise by field
        # assignment instead of ``re + 1j * im`` can only flip the sign
        # of a zero real part, which ``abs()**2`` erases.
        estimate = np.empty((n_q, k, n), dtype=complex)
        estimate.real = buffer[..., :n]
        estimate.imag = buffer[..., n:]
        estimate *= scale[:, None, :]
        estimate += h_preamble[:, None, :]
        safe_est_sq = np.abs(estimate)
        np.multiply(safe_est_sq, safe_est_sq, out=safe_est_sq)
        np.maximum(safe_est_sq, 1e-30, out=safe_est_sq)
        query_index = np.arange(n_q)[:, None]
        tag_mismatch = change_sq[codes, query_index]
        np.divide(tag_mismatch, safe_est_sq, out=tag_mismatch)
        np.multiply(tag_mismatch, self._mismatch_gain, out=tag_mismatch)
        diff = h_preamble[:, None, :] - estimate
        est_mismatch = np.abs(diff)
        np.multiply(est_mismatch, est_mismatch, out=est_mismatch)
        np.divide(est_mismatch, safe_est_sq, out=est_mismatch)
        np.multiply(safe_est_sq, self._tx_ref_snr, out=safe_est_sq)
        np.divide(1.0, safe_est_sq, out=safe_est_sq)  # now the noise term
        np.add(tag_mismatch, est_mismatch, out=tag_mismatch)
        np.add(tag_mismatch, safe_est_sq, out=tag_mismatch)
        np.divide(1.0, tag_mismatch, out=tag_mismatch)
        sinr_rows = tag_mismatch
        self.counters.add("csi", time.perf_counter() - start, n_q * k)

        start = time.perf_counter()
        effective = self.kernels.eesm(
            sinr_rows.reshape(n_q * k, n), self.mcs.modulation
        ).reshape(n_q, k)
        self.counters.add("eesm", time.perf_counter() - start, n_q * k)
        if self.telemetry is not None:
            self.telemetry.observe_sinrs(effective)
        return effective

    def subframe_success_probabilities_batch2d(
        self,
        mpdu_bits,
        preamble_state: TagState,
        subframe_state_rows: Sequence[Sequence[TagState]],
        fading: FadingBatch,
        *,
        exact_coding: bool = False,
        rngs: Sequence[np.random.Generator] | None = None,
        _uniforms: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`subframe_success_probabilities` for a session chunk.

        ``mpdu_bits`` may be scalar, a length-``n_subframes`` row shared
        by every query, or a full ``(n_queries, n_subframes)`` matrix.
        """
        sinrs = self.subframe_effective_sinrs_batch2d(
            preamble_state,
            subframe_state_rows,
            fading,
            rngs=rngs,
            _uniforms=_uniforms,
        )
        start = time.perf_counter()
        probabilities = mpdu_success_probabilities(
            self.mcs, mpdu_bits, sinrs, exact=exact_coding,
            kernels=self.kernels,
        )
        self.counters.add("coding", time.perf_counter() - start, sinrs.size)
        return probabilities

    def subframe_outcomes_batch2d(
        self,
        mpdu_bits,
        preamble_state: TagState,
        subframe_state_rows: Sequence[Sequence[TagState]],
        fading: FadingBatch,
        *,
        exact_coding: bool = False,
        rngs: Sequence[np.random.Generator] | None = None,
    ) -> np.ndarray:
        """:meth:`subframe_outcomes` for a whole session chunk.

        Returns a ``(n_queries, n_subframes)`` boolean matrix; with
        ``exact_coding=True`` it is bitwise equal to stacking the
        per-query :meth:`subframe_outcomes` (and hence the scalar
        :meth:`subframe_outcome` loop) from the same generator state.
        With ``rngs`` each row draws from its own generator instead
        (see :meth:`subframe_effective_sinrs_batch2d`).
        """
        rows = [list(row) for row in subframe_state_rows]
        n_q = len(rows)
        k = len(rows[0]) if n_q else 0
        uniforms = np.empty((n_q, k))
        probabilities = self.subframe_success_probabilities_batch2d(
            mpdu_bits,
            preamble_state,
            rows,
            fading,
            exact_coding=exact_coding,
            rngs=rngs,
            _uniforms=uniforms,
        )
        return self.kernels.sample_outcomes(uniforms, probabilities)

    def subframe_effective_sinr(
        self,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
        *,
        include_estimation_noise: bool = True,
    ) -> float:
        """AWGN-equivalent SINR for one subframe.

        The receiver estimated the channel with the tag in
        ``preamble_state``; the subframe was transmitted with the tag in
        ``subframe_state``.  When the states coincide, the only impairments
        are thermal noise and CSI estimation error; when they differ, the
        stale estimate turns the tag's channel change into distortion,
        amplified by :attr:`mismatch_gain_db`.

        Args:
            fading: one coherence-interval sample shared by the preamble
                and the subframe; drawn fresh when omitted.
        """
        if fading is None:
            fading = self.sample_fading()
        h_preamble = self.channel.channel_vector(
            preamble_state, fading.direct_gain, fading.tag_fading
        )
        h_actual = self.channel.channel_vector(
            subframe_state, fading.direct_gain, fading.tag_fading
        )
        if include_estimation_noise:
            rx_snr = self._tx_ref_snr * float(
                np.mean(np.abs(h_preamble) ** 2)
            )
            estimate = estimate_csi(h_preamble, max(rx_snr, 1e-12), self.rng).h
        else:
            estimate = h_preamble
        safe_est_sq = np.maximum(np.abs(estimate) ** 2, 1e-30)
        # Tag-induced channel change: amplified by the fragility gain.
        tag_mismatch = self._mismatch_gain * (
            np.abs(h_actual - h_preamble) ** 2 / safe_est_sq
        )
        # CSI estimation error: an ordinary receiver impairment, NOT
        # amplified (the fragility gain models the reaction to mid-frame
        # channel *changes*, which a static estimation error is not).
        est_mismatch = np.abs(h_preamble - estimate) ** 2 / safe_est_sq
        noise = 1.0 / (self._tx_ref_snr * safe_est_sq)
        sinrs = 1.0 / (tag_mismatch + est_mismatch + noise)
        effective = eesm_effective_sinr(sinrs, self.mcs.modulation)
        if self.telemetry is not None:
            self.telemetry.observe_sinr(effective)
        return effective

    def subframe_effective_sinrs(
        self,
        preamble_state: TagState,
        subframe_states: Sequence[TagState] | Iterable[TagState],
        fading: FadingSample | None = None,
        *,
        include_estimation_noise: bool = True,
        _uniforms: list[float] | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`subframe_effective_sinr` for one A-MPDU.

        Computes the AWGN-equivalent SINR of every subframe in a single
        numpy pass.  The geometry-dependent terms (channel vectors and
        the tag-induced channel-change power) are evaluated once per
        *distinct* tag state — an A-MPDU only ever contains the design's
        two data states, so the per-subframe work reduces to the CSI
        estimation noise and the shared EESM reduction.

        Randomness is drawn in exactly the order the scalar method uses
        (per subframe: real noise, imaginary noise), so given the same
        generator state this returns bitwise-identical SINRs to calling
        :meth:`subframe_effective_sinr` in a loop — the equivalence suite
        asserts this.

        Args:
            preamble_state: tag state during the PHY preamble.
            subframe_states: tag state during each subframe, in order.
            fading: one coherence-interval sample shared by the preamble
                and all subframes (paper §5 footnote 2); drawn fresh when
                omitted.
            _uniforms: internal — when provided, one uniform draw per
                subframe is appended after that subframe's noise draws,
                replicating the scalar :meth:`subframe_outcome` stream.

        Returns:
            Array of effective SINRs, one per subframe.
        """
        states = list(subframe_states)
        k = len(states)
        if k == 0:
            return np.empty(0, dtype=float)
        if fading is None:
            fading = self.sample_fading()
        start = time.perf_counter()
        h_preamble = self.channel.channel_vector(
            preamble_state, fading.direct_gain, fading.tag_fading
        )
        # Deduplicate tag states: per coherence interval at most two
        # (preamble, subframe) combinations occur, so the channel-change
        # power |h_actual - h_preamble|^2 is computed once per state.
        distinct: list[TagState] = []
        index_of: dict[TagState, int] = {}
        row = np.empty(k, dtype=np.intp)
        for i, state in enumerate(states):
            j = index_of.get(state)
            if j is None:
                j = index_of[state] = len(distinct)
                distinct.append(state)
            row[i] = j
        change_sq = np.stack(
            [
                np.abs(
                    self.channel.channel_vector(
                        state, fading.direct_gain, fading.tag_fading
                    )
                    - h_preamble
                )
                ** 2
                for state in distinct
            ]
        )
        self.counters.add("channel", time.perf_counter() - start, k)

        if not include_estimation_noise:
            if _uniforms is not None:
                for _ in range(k):
                    _uniforms.append(self.rng.random())
            start = time.perf_counter()
            # Noise-free estimates collapse to one SINR row per distinct
            # state; EESM runs on those rows only and is scattered back.
            safe_est_sq = np.maximum(np.abs(h_preamble) ** 2, 1e-30)
            tag_mismatch = self._mismatch_gain * (change_sq / safe_est_sq)
            est_mismatch = np.abs(h_preamble - h_preamble) ** 2 / safe_est_sq
            noise = 1.0 / (self._tx_ref_snr * safe_est_sq)
            sinr_rows = 1.0 / (tag_mismatch + est_mismatch + noise)
            self.counters.add("csi", time.perf_counter() - start, k)
            start = time.perf_counter()
            effective = self.kernels.eesm(
                sinr_rows, self.mcs.modulation
            )[row]
            self.counters.add("eesm", time.perf_counter() - start, k)
            if self.telemetry is not None:
                self.telemetry.observe_sinrs(effective)
            return effective

        start = time.perf_counter()
        n = h_preamble.size
        rx_snr = self._tx_ref_snr * float(np.mean(np.abs(h_preamble) ** 2))
        scale = csi_noise_scale(h_preamble, max(rx_snr, 1e-12))
        noise_re = np.empty((k, n))
        noise_im = np.empty((k, n))
        rng = self.rng
        for i in range(k):
            # Draw order matches the scalar path exactly (estimate_csi's
            # real then imaginary parts, then the outcome uniform).
            noise_re[i] = rng.normal(0.0, 1.0, n)
            noise_im[i] = rng.normal(0.0, 1.0, n)
            if _uniforms is not None:
                _uniforms.append(rng.random())
        estimate = h_preamble + scale * (noise_re + 1j * noise_im)
        safe_est_sq = np.maximum(np.abs(estimate) ** 2, 1e-30)
        tag_mismatch = self._mismatch_gain * (change_sq[row] / safe_est_sq)
        est_mismatch = np.abs(h_preamble - estimate) ** 2 / safe_est_sq
        noise = 1.0 / (self._tx_ref_snr * safe_est_sq)
        sinr_rows = 1.0 / (tag_mismatch + est_mismatch + noise)
        self.counters.add("csi", time.perf_counter() - start, k)
        start = time.perf_counter()
        effective = self.kernels.eesm(sinr_rows, self.mcs.modulation)
        self.counters.add("eesm", time.perf_counter() - start, k)
        if self.telemetry is not None:
            self.telemetry.observe_sinrs(effective)
        return effective

    def subframe_success_probabilities(
        self,
        mpdu_bits,
        preamble_state: TagState,
        subframe_states: Sequence[TagState] | Iterable[TagState],
        fading: FadingSample | None = None,
        *,
        exact_coding: bool = False,
        _uniforms: list[float] | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`subframe_success_probability` for one A-MPDU.

        Args:
            mpdu_bits: per-subframe MPDU lengths in bits (scalar or
                array broadcastable against the subframe axis).
            exact_coding: evaluate the coded-BER union bound exactly per
                subframe instead of via the interpolated table; slower,
                bit-identical to the scalar reference.
        """
        sinrs = self.subframe_effective_sinrs(
            preamble_state, subframe_states, fading, _uniforms=_uniforms
        )
        start = time.perf_counter()
        probabilities = mpdu_success_probabilities(
            self.mcs, mpdu_bits, sinrs, exact=exact_coding,
            kernels=self.kernels,
        )
        self.counters.add("coding", time.perf_counter() - start, sinrs.size)
        return probabilities

    def subframe_outcomes(
        self,
        mpdu_bits,
        preamble_state: TagState,
        subframe_states: Sequence[TagState] | Iterable[TagState],
        fading: FadingSample | None = None,
        *,
        exact_coding: bool = False,
    ) -> np.ndarray:
        """Vectorized :meth:`subframe_outcome`: one Bernoulli per subframe.

        The uniform deciding each subframe is drawn from the same stream,
        interleaved after that subframe's CSI noise exactly as the scalar
        loop draws it — with ``exact_coding=True`` the outcome vector is
        bitwise-identical to calling :meth:`subframe_outcome` per
        subframe from the same generator state.

        Returns:
            Boolean array, True where the subframe's FCS passes.
        """
        if fading is None:
            fading = self.sample_fading()
        uniforms: list[float] = []
        probabilities = self.subframe_success_probabilities(
            mpdu_bits,
            preamble_state,
            subframe_states,
            fading,
            exact_coding=exact_coding,
            _uniforms=uniforms,
        )
        return np.asarray(uniforms) < probabilities

    def subframe_success_probability(
        self,
        mpdu_bits: int,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
    ) -> float:
        """Probability that a subframe decodes, given tag behaviour."""
        sinr = self.subframe_effective_sinr(
            preamble_state, subframe_state, fading
        )
        return mpdu_success_probability(self.mcs, mpdu_bits, sinr)

    def subframe_outcome(
        self,
        mpdu_bits: int,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
    ) -> bool:
        """Draw one Bernoulli decode outcome for a subframe."""
        p = self.subframe_success_probability(
            mpdu_bits, preamble_state, subframe_state, fading
        )
        return bool(self.rng.random() < p)
