"""Per-MPDU decode model under tag-induced channel mismatch.

This is where the PHY substrate meets WiTAG's mechanism.  For each subframe
of a query A-MPDU we ask: given the channel estimate the receiver formed
during the preamble (with the tag in its idle state) and the channel that
actually prevailed while this subframe was on the air (tag idle, or tag
flipped), what is the probability the subframe's FCS passes?

The pipeline is:

    channels (``repro.phy.channel``)
      -> preamble CSI estimate (``repro.phy.csi``)
      -> per-subcarrier post-equalization SINR
      -> EESM effective SINR
      -> uncoded BER (``repro.phy.modulation``)
      -> coded BER via union bound (``repro.phy.coding``)
      -> MPDU error probability ``1 - (1 - BER)^bits``

Calibration
-----------

An ideal zero-forcing equalizer understates how badly a real 802.11
receiver reacts to a *mid-frame* channel change.  Three effects, all absent
from the textbook math, amplify the damage in practice:

* **MIMO stream separation.**  The paper's testbed uses 3x3:3 adapters;
  spatial-stream demultiplexing inverts the channel matrix, so a rank-one
  perturbation is amplified by the matrix condition number (MOXcatter,
  MobiSys 2018, builds its entire design around this fragility).
* **Pilot tracking.**  Receivers track residual phase/frequency offset on
  pilot subcarriers; a step change in the channel derails these loops for
  many symbols.
* **Indoor multipath.**  The tag's perturbation reaches the receiver over
  every environmental path, not just the single geometric bounce of the
  bistatic radar equation.

Rather than simulate each, :class:`LinkErrorModel` exposes a single
documented knob, ``mismatch_gain_db``, that scales the *power* of the
tag-induced mismatch term.  The default (22 dB: approximately 12 dB MIMO
fragility + 5 dB pilot-tracking disturbance + 5 dB multipath) is calibrated so that the simulated LOS
BER-vs-position curve lands in the magnitude range of paper Figure 5; all
*relative* behaviour (the U-shape, NLOS ordering, design ablations) comes
from the physics, not from the knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..seeding import component_rng
from .channel import BackscatterChannel, TagState
from .coding import coded_bit_error_rate, packet_error_rate
from .csi import eesm_effective_sinr, estimate_csi
from .mcs import Mcs
from .noise import ReceiverNoise, dbm_to_watts


def mpdu_success_probability(
    mcs: Mcs, mpdu_bits: int, effective_sinr_linear: float
) -> float:
    """Probability that an MPDU of ``mpdu_bits`` passes its FCS.

    Args:
        mcs: modulation and coding of the PPDU.
        mpdu_bits: MPDU length in bits (header + payload + FCS).
        effective_sinr_linear: AWGN-equivalent SINR (post EESM).

    Returns:
        Success probability in [0, 1].
    """
    if mpdu_bits <= 0:
        raise ValueError(f"mpdu_bits must be > 0, got {mpdu_bits}")
    uncoded = mcs.modulation.bit_error_rate(max(effective_sinr_linear, 0.0))
    coded = coded_bit_error_rate(mcs.coding_rate, uncoded)
    return 1.0 - packet_error_rate(coded, mpdu_bits)


@dataclass(frozen=True)
class FadingSample:
    """One coherence-interval snapshot of the channel's random state.

    Within a single A-MPDU the channel is coherent (frame time of a few
    milliseconds << ~100 ms coherence time, paper §5 footnote 2), so the
    same sample applies to the preamble and every subframe of one PPDU.
    """

    direct_gain: complex
    tag_fading: complex


@dataclass
class LinkErrorModel:
    """Decode model for one client->AP link with a tag in the environment.

    Attributes:
        channel: the backscatter channel (geometry + tag reflection).
        mcs: MCS of query PPDUs.
        tx_power_dbm: client transmit power.
        receiver: AP receiver noise model.
        mismatch_gain_db: receiver-fragility / multipath calibration (see
            module docstring).  Applied to the power of the tag-induced
            channel mismatch only — never to thermal noise or to the
            benign (tag idle) case.
        rng: randomness source for CSI estimation noise and fading.
    """

    channel: BackscatterChannel
    mcs: Mcs
    tx_power_dbm: float = 15.0
    receiver: ReceiverNoise = field(default_factory=ReceiverNoise)
    mismatch_gain_db: float = 22.0
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("error-model")
    )

    def __post_init__(self) -> None:
        self._tx_ref_snr = (
            dbm_to_watts(self.tx_power_dbm) / self.receiver.noise_floor_w
        )
        self._mismatch_gain = 10.0 ** (self.mismatch_gain_db / 10.0)

    @property
    def tx_referred_snr_linear(self) -> float:
        """``P_tx / N``: SNR before applying any channel gain."""
        return self._tx_ref_snr

    def received_snr_db(self, idle_state: TagState) -> float:
        """Mean received SNR (dB) across subcarriers with the tag idle."""
        h = self.channel.channel_vector(idle_state)
        rx = self._tx_ref_snr * float(np.mean(np.abs(h) ** 2))
        return 10.0 * float(np.log10(max(rx, 1e-30)))

    def sample_fading(self) -> FadingSample:
        """Draw the channel's random state for one coherence interval."""
        return FadingSample(
            direct_gain=self.channel.sample_direct_fading(),
            tag_fading=self.channel.sample_tag_fading(),
        )

    def subframe_effective_sinr(
        self,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
        *,
        include_estimation_noise: bool = True,
    ) -> float:
        """AWGN-equivalent SINR for one subframe.

        The receiver estimated the channel with the tag in
        ``preamble_state``; the subframe was transmitted with the tag in
        ``subframe_state``.  When the states coincide, the only impairments
        are thermal noise and CSI estimation error; when they differ, the
        stale estimate turns the tag's channel change into distortion,
        amplified by :attr:`mismatch_gain_db`.

        Args:
            fading: one coherence-interval sample shared by the preamble
                and the subframe; drawn fresh when omitted.
        """
        if fading is None:
            fading = self.sample_fading()
        h_preamble = self.channel.channel_vector(
            preamble_state, fading.direct_gain, fading.tag_fading
        )
        h_actual = self.channel.channel_vector(
            subframe_state, fading.direct_gain, fading.tag_fading
        )
        if include_estimation_noise:
            rx_snr = self._tx_ref_snr * float(
                np.mean(np.abs(h_preamble) ** 2)
            )
            estimate = estimate_csi(h_preamble, max(rx_snr, 1e-12), self.rng).h
        else:
            estimate = h_preamble
        safe_est_sq = np.maximum(np.abs(estimate) ** 2, 1e-30)
        # Tag-induced channel change: amplified by the fragility gain.
        tag_mismatch = self._mismatch_gain * (
            np.abs(h_actual - h_preamble) ** 2 / safe_est_sq
        )
        # CSI estimation error: an ordinary receiver impairment, NOT
        # amplified (the fragility gain models the reaction to mid-frame
        # channel *changes*, which a static estimation error is not).
        est_mismatch = np.abs(h_preamble - estimate) ** 2 / safe_est_sq
        noise = 1.0 / (self._tx_ref_snr * safe_est_sq)
        sinrs = 1.0 / (tag_mismatch + est_mismatch + noise)
        return eesm_effective_sinr(sinrs, self.mcs.modulation)

    def subframe_success_probability(
        self,
        mpdu_bits: int,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
    ) -> float:
        """Probability that a subframe decodes, given tag behaviour."""
        sinr = self.subframe_effective_sinr(
            preamble_state, subframe_state, fading
        )
        return mpdu_success_probability(self.mcs, mpdu_bits, sinr)

    def subframe_outcome(
        self,
        mpdu_bits: int,
        preamble_state: TagState,
        subframe_state: TagState,
        fading: FadingSample | None = None,
    ) -> bool:
        """Draw one Bernoulli decode outcome for a subframe."""
        p = self.subframe_success_probability(
            mpdu_bits, preamble_state, subframe_state, fading
        )
        return bool(self.rng.random() < p)
