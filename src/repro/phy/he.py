"""802.11ax (HE) rate and airtime support.

Paper §4: "In addition to currently available 802.11n and ac networks,
WiTAG will be compatible with the 802.11ax standard ... because it also
supports A-MPDU aggregation."  This module provides the HE numerology —
4x longer OFDM symbols (12.8 us), tighter subcarrier spacing (78.125 kHz,
234 data tones in 20 MHz), MCS 0-11 up to 1024-QAM — so the claim can be
checked quantitatively: HE subframes still quantise onto the tag's clock
grid and the throughput model still lands at the same tag rate, because
WiTAG's rate is set by the tag clock, not by the PHY generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: HE OFDM useful symbol duration (4x the legacy 3.2 us).
HE_SYMBOL_USEFUL_S = 12.8e-6

#: HE guard intervals.
HE_GI_SHORT_S = 0.8e-6
HE_GI_MEDIUM_S = 1.6e-6
HE_GI_LONG_S = 3.2e-6

#: HE data subcarriers (tones) per channel width (full-bandwidth RU).
HE_DATA_SUBCARRIERS = {20: 234, 40: 468, 80: 980, 160: 1960}

#: HE-SU preamble: L-preamble(20) + RL-SIG(4) + HE-SIG-A(8) + HE-STF(4).
HE_SU_PREAMBLE_BASE_S = 36e-6

#: Each HE-LTF (2x mode) lasts 8 us including its GI.
HE_LTF_S = 8e-6

#: Exact bits-per-subcarrier for HE MCS 0-11 (1024-QAM = 10 bits).
_HE_BITS_PER_SC = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0, 20 / 3, 7.5, 25 / 3)


@dataclass(frozen=True)
class HeMcs:
    """An 802.11ax MCS (0-11) with a spatial-stream count.

    Rates are computed from the exact per-tone information bits, so they
    match the published tables (e.g. HE MCS 11, 20 MHz, 1 stream, 0.8 us
    GI = 143.4 Mb/s).
    """

    index: int
    spatial_streams: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.index <= 11:
            raise ValueError(f"HE MCS index must be 0-11, got {self.index}")
        if not 1 <= self.spatial_streams <= 8:
            raise ValueError(
                f"spatial streams must be 1-8, got {self.spatial_streams}"
            )

    @property
    def info_bits_per_subcarrier(self) -> float:
        """Information bits carried per data tone per symbol."""
        return _HE_BITS_PER_SC[self.index]

    def data_bits_per_symbol(self, channel_width_mhz: int = 20) -> float:
        """Data bits per OFDM symbol (all streams)."""
        try:
            tones = HE_DATA_SUBCARRIERS[channel_width_mhz]
        except KeyError:
            raise ValueError(
                f"unsupported HE channel width {channel_width_mhz} MHz"
            ) from None
        return tones * self.info_bits_per_subcarrier * self.spatial_streams

    def data_rate_bps(
        self, channel_width_mhz: int = 20, gi_s: float = HE_GI_SHORT_S
    ) -> float:
        """PHY data rate for a guard-interval choice."""
        if gi_s not in (HE_GI_SHORT_S, HE_GI_MEDIUM_S, HE_GI_LONG_S):
            raise ValueError(f"invalid HE guard interval {gi_s}")
        symbol_s = HE_SYMBOL_USEFUL_S + gi_s
        return self.data_bits_per_symbol(channel_width_mhz) / symbol_s


def he_symbol_duration_s(gi_s: float = HE_GI_SHORT_S) -> float:
    """Full HE symbol duration for a guard interval."""
    if gi_s not in (HE_GI_SHORT_S, HE_GI_MEDIUM_S, HE_GI_LONG_S):
        raise ValueError(f"invalid HE guard interval {gi_s}")
    return HE_SYMBOL_USEFUL_S + gi_s


def he_preamble_s(spatial_streams: int = 1) -> float:
    """HE-SU preamble duration (2x HE-LTF mode)."""
    if not 1 <= spatial_streams <= 8:
        raise ValueError(
            f"spatial streams must be 1-8, got {spatial_streams}"
        )
    # LTF symbols come in counts {1,2,4,6,8} for 1-8 streams.
    for count in (1, 2, 4, 6, 8):
        if count >= spatial_streams:
            n_ltf = count
            break
    return HE_SU_PREAMBLE_BASE_S + n_ltf * HE_LTF_S


def he_ppdu_airtime_s(
    psdu_bytes: int,
    mcs: HeMcs,
    *,
    channel_width_mhz: int = 20,
    gi_s: float = HE_GI_SHORT_S,
) -> float:
    """Airtime of an HE-SU PPDU carrying ``psdu_bytes``."""
    if psdu_bytes < 0:
        raise ValueError(f"psdu_bytes must be >= 0, got {psdu_bytes}")
    bits = 16 + 8 * psdu_bytes + 6
    dbps = mcs.data_bits_per_symbol(channel_width_mhz)
    n_symbols = max(1, math.ceil(bits / dbps))
    return he_preamble_s(mcs.spatial_streams) + n_symbols * he_symbol_duration_s(gi_s)


def witag_he_throughput_bps(
    *,
    n_subframes: int = 64,
    n_trigger_subframes: int = 2,
    tag_clock_hz: float = 50e3,
    mcs: HeMcs | None = None,
    channel_width_mhz: int = 20,
    sifs_s: float = 10e-6,
    access_s: float = 95.5e-6,
    block_ack_s: float = 32e-6,
) -> float:
    """Tag throughput when queries ride 802.11ax PPDUs.

    Subframes are padded to whole tag-clock periods exactly as with
    HT/VHT; an HE symbol (13.6 us with 0.8 us GI) is *longer* than the
    50 kHz clock period, so HE subframes quantise to one symbol each
    (~14.4 us effective with padding to clock grid handled by rounding
    up), and throughput stays in the same tens-of-Kbps regime — the tag
    clock, not the PHY generation, sets the rate.
    """
    if mcs is None:
        mcs = HeMcs(7)
    symbol_s = he_symbol_duration_s()
    clock_period = 1.0 / tag_clock_hz
    # Subframe occupies the smallest whole number of symbols covering at
    # least one clock period.
    symbols_per_subframe = max(1, math.ceil(clock_period / symbol_s))
    subframe_s = symbols_per_subframe * symbol_s
    data_s = n_subframes * subframe_s
    ppdu_s = he_preamble_s(mcs.spatial_streams) + data_s
    cycle_s = access_s + ppdu_s + sifs_s + block_ack_s
    return (n_subframes - n_trigger_subframes) / cycle_s
