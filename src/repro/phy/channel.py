"""Wireless channel model for backscatter links.

This module implements the physics that replaces the paper's testbed (see
DESIGN.md, substitution table).  A WiTAG link has two relevant propagation
components:

* the **direct path** from the querying client to the AP, modelled with
  log-distance path loss (plus wall losses in NLOS scenarios); and
* the **tag-reflected path** client -> tag -> AP, whose strength follows the
  bistatic radar equation — received reflected power is proportional to
  ``1 / (Ds^2 * Dr^2)`` where Ds/Dr are the tag's distances to sender and
  receiver.  The paper invokes exactly this relationship (§6.2, citing
  Skolnik's Radar Handbook) to explain why BER peaks when the tag sits
  midway between client and AP.

The tag perturbs the channel by changing its reflection coefficient
(:class:`TagState`): absorbing (open circuit), reflecting at 0 degrees, or
reflecting at 180 degrees.  The difference between channel vectors in two
states is the "channel change" of paper §5.2 and Figure 3.

Temporal variation (people walking in the lab) is modelled as Rician
fading around the geometric LOS solution with a configurable K-factor.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from ..seeding import component_rng
from .constants import Band, SPEED_OF_LIGHT_M_S
from .ofdm import data_subcarrier_offsets_hz, delay_phase_rotation


#: Unit tag-fading multiplier: the deterministic no-fading case.
_UNIT_FADING = 1.0 + 0.0j


class TagState(enum.Enum):
    """Reflection state of a backscatter tag antenna.

    ``ABSORB`` models an open-circuited (non-reflective) antenna — the basic
    design of paper §5.1.  ``REFLECT_0`` / ``REFLECT_180`` model the
    always-reflecting, phase-switched design of §5.2, implemented in the
    prototype with two short-circuited cables differing by a quarter
    wavelength.
    """

    ABSORB = "absorb"
    REFLECT_0 = "reflect-0"
    REFLECT_180 = "reflect-180"

    @property
    def reflection_coefficient(self) -> complex:
        """Field reflection coefficient of the antenna load."""
        if self is TagState.ABSORB:
            # An open-circuited antenna still re-radiates its structural
            # mode; -20 dB residual is typical for a matched dipole.
            return complex(0.1, 0.0)
        if self is TagState.REFLECT_0:
            return complex(1.0, 0.0)
        return complex(-1.0, 0.0)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional fixed obstruction loss.

    ``PL(d) = FSPL(ref) + 10 * n * log10(d / ref) + obstruction_db``

    Attributes:
        exponent: path-loss exponent (2.0 free space, ~2-2.5 indoor LOS,
            3-4 through walls — but NLOS wall losses are better expressed
            via ``obstruction_db``).
        reference_m: reference distance for the FSPL anchor.
        obstruction_db: additional fixed loss (walls, cabinets, doors).
    """

    exponent: float = 2.0
    reference_m: float = 1.0
    obstruction_db: float = 0.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError(f"exponent must be > 0, got {self.exponent}")
        if self.reference_m <= 0:
            raise ValueError(
                f"reference distance must be > 0, got {self.reference_m}"
            )
        if self.obstruction_db < 0:
            raise ValueError(
                f"obstruction loss must be >= 0 dB, got {self.obstruction_db}"
            )

    def path_loss_db(self, distance_m: float, wavelength_m: float) -> float:
        """Total path loss in dB at ``distance_m``."""
        if distance_m <= 0:
            raise ValueError(f"distance must be > 0, got {distance_m}")
        d = max(distance_m, self.reference_m)
        fspl_ref = 20.0 * math.log10(
            4.0 * math.pi * self.reference_m / wavelength_m
        )
        return (
            fspl_ref
            + 10.0 * self.exponent * math.log10(d / self.reference_m)
            + self.obstruction_db
        )

    def amplitude_gain(self, distance_m: float, wavelength_m: float) -> float:
        """Field amplitude gain (sqrt of power gain) at ``distance_m``."""
        return 10.0 ** (-self.path_loss_db(distance_m, wavelength_m) / 20.0)


@dataclass(frozen=True)
class TagAntenna:
    """Electromagnetic model of the tag's antenna and switch.

    Attributes:
        gain_dbi: antenna gain (omnidirectional WiFi antennas ~2 dBi; the
            prototype used a standard omni).
        modulation_efficiency: fraction of intercepted field re-radiated
            after switch insertion loss and mismatch (0-1].
    """

    gain_dbi: float = 2.0
    modulation_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.modulation_efficiency <= 1.0:
            raise ValueError(
                "modulation efficiency must be in (0, 1], got "
                f"{self.modulation_efficiency}"
            )

    @property
    def gain_linear(self) -> float:
        """Linear antenna power gain."""
        return 10.0 ** (self.gain_dbi / 10.0)

    def radar_cross_section_m2(self, wavelength_m: float) -> float:
        """Effective antenna-mode RCS: ``G^2 * lambda^2 / (4 pi)``.

        This is the standard maximum antenna-mode scattering aperture of a
        loaded antenna (Ma et al., MobiCom 2017 — the paper's reference
        [11] — use the same formulation for RFID tags).
        """
        return (
            self.gain_linear**2
            * wavelength_m**2
            / (4.0 * math.pi)
            * self.modulation_efficiency
        )


@dataclass(frozen=True)
class ChannelGeometry:
    """Distances between client (sender), tag and AP (receiver).

    Attributes:
        tx_rx_m: client-to-AP distance.
        tx_tag_m: client-to-tag distance (Ds in the paper).
        tag_rx_m: tag-to-AP distance (Dr in the paper).
    """

    tx_rx_m: float
    tx_tag_m: float
    tag_rx_m: float

    def __post_init__(self) -> None:
        for name, value in (
            ("tx_rx_m", self.tx_rx_m),
            ("tx_tag_m", self.tx_tag_m),
            ("tag_rx_m", self.tag_rx_m),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.tx_tag_m + self.tag_rx_m < self.tx_rx_m - 1e-9:
            raise ValueError(
                "triangle inequality violated: tx->tag->rx cannot be "
                "shorter than tx->rx"
            )

    @classmethod
    def on_line(cls, tx_rx_m: float, tag_from_tx_m: float) -> "ChannelGeometry":
        """Tag placed on the straight line between client and AP.

        This is the paper's Figure 5 setup: AP and client 8 m apart, tag at
        1..7 m from the client.
        """
        if not 0 < tag_from_tx_m < tx_rx_m:
            raise ValueError(
                f"tag must lie strictly between endpoints: 0 < "
                f"{tag_from_tx_m} < {tx_rx_m} required"
            )
        return cls(
            tx_rx_m=tx_rx_m,
            tx_tag_m=tag_from_tx_m,
            tag_rx_m=tx_rx_m - tag_from_tx_m,
        )

    def reversed(self) -> "ChannelGeometry":
        """The same deployment with transmitter and receiver swapped.

        Models the paper's §4 observation that "the AP could also initiate
        this process": an AP-initiated query sees the tag's legs exchanged.
        """
        return ChannelGeometry(
            tx_rx_m=self.tx_rx_m,
            tx_tag_m=self.tag_rx_m,
            tag_rx_m=self.tx_tag_m,
        )

    @property
    def excess_delay_s(self) -> float:
        """Extra propagation delay of the reflected path vs the direct one."""
        extra = self.tx_tag_m + self.tag_rx_m - self.tx_rx_m
        return extra / SPEED_OF_LIGHT_M_S


@dataclass
class BackscatterChannel:
    """Frequency-selective channel between client and AP with a tag present.

    The channel for tag state ``s`` at subcarrier ``k`` is

        ``h_k(s) = h_direct_k + Gamma(s) * h_tag_k * exp(-j 2 pi f_k tau)``

    where ``h_tag_k`` is the bistatic-radar amplitude of the reflected path
    and ``tau`` its excess delay.  Optional Rician fading perturbs the
    direct component to model motion in the environment.

    Attributes:
        geometry: link geometry.
        band: operating band (sets the wavelength).
        direct_loss: path-loss model for the client->AP path.
        tx_tag_loss: path-loss model for the client->tag leg.
        tag_rx_loss: path-loss model for the tag->AP leg (may differ from
            the client leg, e.g. when only the AP sits behind walls).
        antenna: tag antenna model.
        rician_k_db: Rician K-factor of the direct path in dB.  ``None``
            disables fading (a perfectly static environment).
        rng: random generator for fading and phases.
    """

    geometry: ChannelGeometry
    band: Band = Band.GHZ_2_4
    direct_loss: PathLossModel = field(default_factory=PathLossModel)
    tx_tag_loss: PathLossModel = field(default_factory=PathLossModel)
    tag_rx_loss: PathLossModel = field(default_factory=PathLossModel)
    antenna: TagAntenna = field(default_factory=TagAntenna)
    rician_k_db: float | None = 15.0
    tag_rician_k_db: float | None = 5.0
    channel_width_mhz: int = 20
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("channel")
    )

    def __post_init__(self) -> None:
        wavelength = self.band.wavelength_m
        self._offsets_hz = data_subcarrier_offsets_hz(self.channel_width_mhz)
        # Direct path: deterministic amplitude, random but fixed LOS phase.
        amp = self.direct_loss.amplitude_gain(self.geometry.tx_rx_m, wavelength)
        phase = 2.0 * math.pi * self.rng.random()
        self._h_direct_los = amp * np.exp(1j * phase)
        # Reflected path amplitude from the bistatic radar equation.
        sigma = self.antenna.radar_cross_section_m2(wavelength)
        g1 = self.tx_tag_loss.amplitude_gain(self.geometry.tx_tag_m, wavelength)
        g2 = self.tag_rx_loss.amplitude_gain(self.geometry.tag_rx_m, wavelength)
        # Each leg's amplitude_gain already includes one lambda/(4 pi d)
        # factor; the scattering aperture contributes sqrt(4 pi sigma)/lambda.
        scatter_amp = math.sqrt(4.0 * math.pi * sigma) / wavelength
        tag_phase = 2.0 * math.pi * self.rng.random()
        self._h_tag_los = g1 * g2 * scatter_amp * np.exp(1j * tag_phase)
        self._tag_rotation = delay_phase_rotation(
            self._offsets_hz, self.geometry.excess_delay_s
        )
        # Deterministic (no-fading) channel vectors are pure functions of
        # the geometry fixed above; cache them per tag state.
        self._static_vectors: dict[TagState, np.ndarray] = {}

    def invalidate_caches(self) -> None:
        """Drop cached deterministic channel vectors.

        The per-:class:`TagState` cache filled by :meth:`channel_vector`
        assumes the geometry, band, path-loss models and antenna fixed in
        ``__post_init__`` never change.  Anything that would re-run
        ``__post_init__`` (building a new channel) gets fresh caches
        automatically; call this only if you mutate derived attributes of
        an existing instance in place (tests do; production code should
        build a new channel instead).
        """
        self._static_vectors.clear()

    @property
    def n_subcarriers(self) -> int:
        """Number of modelled data subcarriers."""
        return int(self._offsets_hz.size)

    @property
    def direct_gain(self) -> complex:
        """LOS direct-path field gain (no fading)."""
        return complex(self._h_direct_los)

    @property
    def tag_path_amplitude(self) -> float:
        """Field amplitude of the tag-reflected path (state-independent)."""
        return abs(self._h_tag_los)

    def sample_direct_fading(self) -> complex:
        """Draw one Rician-faded direct-path gain.

        With K-factor K (linear), ``h = sqrt(K/(K+1)) h_los + sqrt(1/(K+1))
        * CN(0, |h_los|^2)``.  Returns the LOS gain unchanged when fading is
        disabled.
        """
        if self.rician_k_db is None:
            return complex(self._h_direct_los)
        k = 10.0 ** (self.rician_k_db / 10.0)
        los_part = math.sqrt(k / (k + 1.0)) * self._h_direct_los
        sigma = abs(self._h_direct_los) * math.sqrt(1.0 / (k + 1.0) / 2.0)
        scatter = complex(
            self.rng.normal(0.0, sigma), self.rng.normal(0.0, sigma)
        )
        return complex(los_part + scatter)

    def sample_tag_fading(self) -> complex:
        """Draw one Rician fading factor for the tag-reflected path.

        The reflected path traverses the same cluttered environment twice,
        so it fades more deeply than the direct path (lower default K).
        Returned as a unit-mean complex multiplier on the tag path gain.
        """
        if self.tag_rician_k_db is None:
            return complex(1.0, 0.0)
        k = 10.0 ** (self.tag_rician_k_db / 10.0)
        los_part = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (k + 1.0) / 2.0)
        return complex(
            los_part + self.rng.normal(0.0, sigma),
            self.rng.normal(0.0, sigma),
        )

    def sample_fading_batch(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` coherence intervals of fading in scalar order.

        Returns ``(direct_gains, tag_fadings)`` complex arrays of length
        ``count``.  Element ``i`` is bitwise equal to the pair a scalar
        loop would produce with ``sample_direct_fading()`` followed by
        ``sample_tag_fading()`` on the same generator: the draws come
        from one row-major ``standard_normal`` matrix whose per-row
        layout matches the scalar call order (direct re, direct im, tag
        re, tag im), and each normal is reconstructed as ``sigma * z``
        exactly as the Generator does internally for ``normal(0, sigma)``.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n_direct = 0 if self.rician_k_db is None else 2
        n_tag = 0 if self.tag_rician_k_db is None else 2
        total = n_direct + n_tag
        z = np.empty((count, total))
        if total and count:
            self.rng.standard_normal(out=z)
        if n_direct:
            k = 10.0 ** (self.rician_k_db / 10.0)
            los_part = math.sqrt(k / (k + 1.0)) * self._h_direct_los
            sigma = abs(self._h_direct_los) * math.sqrt(1.0 / (k + 1.0) / 2.0)
            scatter = np.empty(count, dtype=complex)
            scatter.real = sigma * z[:, 0]
            scatter.imag = sigma * z[:, 1]
            direct = los_part + scatter
        else:
            direct = np.full(count, complex(self._h_direct_los), dtype=complex)
        if n_tag:
            k = 10.0 ** (self.tag_rician_k_db / 10.0)
            los_part = math.sqrt(k / (k + 1.0))
            sigma = math.sqrt(1.0 / (k + 1.0) / 2.0)
            tag = np.empty(count, dtype=complex)
            tag.real = los_part + sigma * z[:, n_direct]
            tag.imag = sigma * z[:, n_direct + 1]
        else:
            tag = np.full(count, _UNIT_FADING, dtype=complex)
        return direct, tag

    def channel_vector_batch(
        self,
        state: TagState,
        direct_gains: np.ndarray,
        tag_fadings: np.ndarray,
    ) -> np.ndarray:
        """:meth:`channel_vector` for many coherence intervals at once.

        Args:
            state: the tag's reflection state (shared by all rows).
            direct_gains: complex ``(n_samples,)`` faded direct gains.
            tag_fadings: complex ``(n_samples,)`` tag-path multipliers.

        Returns:
            Complex ``(n_samples, n_subcarriers)`` matrix whose row ``i``
            is bitwise equal to ``channel_vector(state, direct_gains[i],
            tag_fadings[i])`` — the elementwise operations follow the
            scalar expression's association order exactly.
        """
        gains = np.asarray(direct_gains, dtype=complex)
        fadings = np.asarray(tag_fadings, dtype=complex)
        gamma = state.reflection_coefficient
        tag_term = (gamma * fadings) * self._h_tag_los
        return gains[:, None] + tag_term[:, None] * self._tag_rotation

    def channel_vector(
        self,
        state: TagState,
        direct_gain: complex | None = None,
        tag_fading: complex = 1.0 + 0.0j,
    ) -> np.ndarray:
        """Per-subcarrier channel for a tag state.

        Args:
            state: the tag's reflection state.
            direct_gain: a (possibly faded) direct-path gain; defaults to
                the static LOS value.  Pass the same sample to multiple
                calls to compare tag states under identical fading, which
                is physically correct within one A-MPDU (coherence time
                ~100 ms >> frame time of a few ms, paper §5 footnote 2).

        Returns:
            Complex array of length :attr:`n_subcarriers`.  Fully
            deterministic calls (no ``direct_gain``, unit ``tag_fading``)
            are cached per state and returned as read-only arrays; see
            :meth:`invalidate_caches` for the caching contract.
        """
        if direct_gain is None and tag_fading == _UNIT_FADING:
            cached = self._static_vectors.get(state)
            if cached is None:
                gamma = state.reflection_coefficient
                cached = self._h_direct_los + (
                    gamma * _UNIT_FADING * self._h_tag_los * self._tag_rotation
                )
                cached.flags.writeable = False
                self._static_vectors[state] = cached
            return cached
        h_d = self._h_direct_los if direct_gain is None else direct_gain
        gamma = state.reflection_coefficient
        return h_d + gamma * tag_fading * self._h_tag_los * self._tag_rotation

    def channel_change(
        self,
        state_a: TagState,
        state_b: TagState,
        tag_fading: complex = 1.0 + 0.0j,
    ) -> np.ndarray:
        """Per-subcarrier channel difference between two tag states.

        This is the |h - h'| quantity of paper Figure 3; its magnitude
        determines how badly a mid-A-MPDU state flip corrupts subframes.
        """
        gamma_delta = (
            state_b.reflection_coefficient - state_a.reflection_coefficient
        )
        return gamma_delta * tag_fading * self._h_tag_los * self._tag_rotation

    def mean_change_magnitude(
        self, state_a: TagState, state_b: TagState
    ) -> float:
        """Mean |delta h| across subcarriers for two tag states."""
        return float(np.mean(np.abs(self.channel_change(state_a, state_b))))
