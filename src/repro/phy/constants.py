"""Physical-layer constants for IEEE 802.11n/ac OFDM.

These values come from the IEEE 802.11-2016 standard (clauses 17, 19 and 21
covering OFDM, HT and VHT PHYs).  WiTAG (Abedi et al., HotNets 2018) relies
on a handful of them directly:

* the OFDM symbol duration (3.2 us + guard interval), which sets the time
  granularity at which a tag can toggle its reflection;
* the preamble structure, because the receiver estimates the channel *once*
  per A-MPDU using the training fields at the start of the PHY header; and
* the subcarrier layout, which determines per-subcarrier channel state
  information (CSI).

Everything here is a plain module-level constant or a small enum so that the
rest of the library can reference standard numbers by name instead of magic
literals.
"""

from __future__ import annotations

import enum

# ---------------------------------------------------------------------------
# Timing (all seconds)
# ---------------------------------------------------------------------------

#: Duration of the useful (FFT) portion of one OFDM symbol.
OFDM_SYMBOL_USEFUL_S = 3.2e-6

#: Long guard interval (standard 802.11a/g/n/ac).
GUARD_INTERVAL_LONG_S = 0.8e-6

#: Short guard interval (optional in 802.11n/ac).
GUARD_INTERVAL_SHORT_S = 0.4e-6

#: OFDM symbol duration with the long guard interval.
SYMBOL_LONG_GI_S = OFDM_SYMBOL_USEFUL_S + GUARD_INTERVAL_LONG_S  # 4.0 us

#: OFDM symbol duration with the short guard interval.
SYMBOL_SHORT_GI_S = OFDM_SYMBOL_USEFUL_S + GUARD_INTERVAL_SHORT_S  # 3.6 us

#: Short interframe space for OFDM PHYs in the 5 GHz band.
SIFS_5GHZ_S = 16e-6

#: Short interframe space in the 2.4 GHz band (802.11n).
SIFS_2_4GHZ_S = 10e-6

#: Slot time for OFDM PHYs.
SLOT_TIME_S = 9e-6

#: DIFS = SIFS + 2 * slot.  Computed for the 5 GHz band.
DIFS_5GHZ_S = SIFS_5GHZ_S + 2 * SLOT_TIME_S

#: Legacy (non-HT) preamble: L-STF (8 us) + L-LTF (8 us) + L-SIG (4 us).
LEGACY_PREAMBLE_S = 20e-6

#: HT-mixed preamble additions: HT-SIG (8 us) + HT-STF (4 us).
HT_SIG_S = 8e-6
HT_STF_S = 4e-6

#: Each HT-LTF (one per spatial stream, first one included) lasts 4 us.
HT_LTF_S = 4e-6

#: VHT preamble additions: VHT-SIG-A (8 us) + VHT-STF (4 us) + VHT-SIG-B (4 us).
VHT_SIG_A_S = 8e-6
VHT_STF_S = 4e-6
VHT_SIG_B_S = 4e-6
VHT_LTF_S = 4e-6

# ---------------------------------------------------------------------------
# Subcarriers
# ---------------------------------------------------------------------------

#: Data subcarriers for HT (802.11n) 20 MHz channels.
DATA_SUBCARRIERS_HT20 = 52

#: Data subcarriers for HT/VHT 40 MHz channels.
DATA_SUBCARRIERS_40 = 108

#: Data subcarriers for VHT 80 MHz channels.
DATA_SUBCARRIERS_80 = 234

#: Data subcarriers for VHT 160 MHz channels.
DATA_SUBCARRIERS_160 = 468

#: Pilot subcarriers per channel width.
PILOT_SUBCARRIERS = {20: 4, 40: 6, 80: 8, 160: 16}

#: Subcarrier spacing (Hz) for 802.11n/ac.
SUBCARRIER_SPACING_HZ = 312.5e3

# ---------------------------------------------------------------------------
# MAC-related PHY limits
# ---------------------------------------------------------------------------

#: Maximum number of MPDUs in an A-MPDU acknowledged by one block ACK bitmap.
MAX_AMPDU_SUBFRAMES = 64

#: Maximum A-MPDU length for 802.11n (bytes).
MAX_AMPDU_BYTES_HT = 65_535

#: Maximum A-MPDU length for 802.11ac (bytes).
MAX_AMPDU_BYTES_VHT = 1_048_575

#: OFDM service field bits prepended to the PSDU before scrambling.
SERVICE_BITS = 16

#: Tail bits appended per BCC encoder.
TAIL_BITS_PER_ENCODER = 6

# ---------------------------------------------------------------------------
# Radio constants
# ---------------------------------------------------------------------------

#: Speed of light (m/s); used for wavelength and free-space path loss.
SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Boltzmann constant (J/K) for thermal-noise computations.
BOLTZMANN_J_PER_K = 1.380_649e-23

#: Reference temperature (K) for noise figure calculations.
REFERENCE_TEMPERATURE_K = 290.0

#: Centre frequency of 2.4 GHz WiFi channel 6, used as the default band.
DEFAULT_CARRIER_HZ = 2.437e9

#: Centre frequency of 5 GHz WiFi channel 36.
CARRIER_5GHZ_HZ = 5.18e9


class Band(enum.Enum):
    """WiFi operating band.

    The band matters for SIFS timing and for the wavelength used in
    reflection/path-loss computations.
    """

    GHZ_2_4 = "2.4GHz"
    GHZ_5 = "5GHz"

    @property
    def sifs_s(self) -> float:
        """Short interframe space for this band."""
        return SIFS_2_4GHZ_S if self is Band.GHZ_2_4 else SIFS_5GHZ_S

    @property
    def default_carrier_hz(self) -> float:
        """A representative carrier frequency for this band."""
        return DEFAULT_CARRIER_HZ if self is Band.GHZ_2_4 else CARRIER_5GHZ_HZ

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return SPEED_OF_LIGHT_M_S / self.default_carrier_hz


def data_subcarriers(channel_width_mhz: int) -> int:
    """Return the number of data subcarriers for a channel width.

    Args:
        channel_width_mhz: one of 20, 40, 80 or 160.

    Raises:
        ValueError: for unsupported widths.
    """
    table = {
        20: DATA_SUBCARRIERS_HT20,
        40: DATA_SUBCARRIERS_40,
        80: DATA_SUBCARRIERS_80,
        160: DATA_SUBCARRIERS_160,
    }
    try:
        return table[channel_width_mhz]
    except KeyError:
        raise ValueError(
            f"unsupported channel width {channel_width_mhz} MHz; "
            f"expected one of {sorted(table)}"
        ) from None
