"""Channel estimation, equalization and effective-SINR computation.

802.11 receivers estimate per-subcarrier channel state information (CSI)
from the known training symbols in the PHY preamble (paper §3.2) and use
that single estimate to equalize *every* OFDM symbol that follows.  WiTAG
exploits precisely this: if the channel changes after the preamble, the
stale estimate turns into a multiplicative distortion that the receiver
cannot distinguish from noise.

Given the true channel ``h_a`` during a subframe and the (preamble-time)
estimate ``h_e``, a zero-forcing equalizer outputs

    ``x_hat = (h_a / h_e) x + n / h_e``

so the post-equalization SINR per subcarrier is

    ``SINR = P / ( P |h_a/h_e - 1|^2  +  N / |h_e|^2 )``

Across subcarriers we reduce to a single *effective* SINR with the
exponential effective SNR mapping (EESM), the standard abstraction used in
802.11/LTE system simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modulation import Modulation

#: EESM beta calibration per modulation (typical literature values).
EESM_BETA: dict[Modulation, float] = {
    Modulation.BPSK: 1.0,
    Modulation.QPSK: 1.6,
    Modulation.QAM16: 5.0,
    Modulation.QAM64: 18.0,
    Modulation.QAM256: 36.0,
}


@dataclass(frozen=True)
class CsiEstimate:
    """A receiver's per-subcarrier channel estimate.

    Attributes:
        h: complex estimate per subcarrier (as produced from the preamble).
        estimation_snr_linear: SNR at which the estimate was taken; the
            estimate includes additive error with variance ``|h|^2 / SNR /
            n_training`` per subcarrier.
    """

    h: np.ndarray
    estimation_snr_linear: float


def estimate_csi(
    true_channel: np.ndarray,
    snr_linear: float,
    rng: np.random.Generator,
    *,
    n_training_symbols: int = 2,
) -> CsiEstimate:
    """Simulate preamble-based channel estimation.

    The estimate equals the true channel during the preamble plus complex
    Gaussian error whose variance shrinks with SNR and with the number of
    training symbols averaged (L-LTF has two repetitions).

    Raises:
        ValueError: for non-positive SNR or training count.
    """
    h = np.asarray(true_channel, dtype=complex)
    scale = csi_noise_scale(
        h, snr_linear, n_training_symbols=n_training_symbols
    )
    error = rng.normal(0.0, 1.0, h.shape) + 1j * rng.normal(0.0, 1.0, h.shape)
    return CsiEstimate(
        h=h + scale * error, estimation_snr_linear=snr_linear
    )


def csi_noise_scale(
    true_channel: np.ndarray,
    snr_linear: float | np.ndarray,
    *,
    n_training_symbols: int = 2,
) -> np.ndarray:
    """Per-subcarrier standard deviation of the CSI estimation error.

    Shared by :func:`estimate_csi` and the vectorized fast paths (which
    draw one noise matrix for a whole A-MPDU or session chunk): all paths
    scale unit Gaussians by exactly this array, so scalar and batch
    estimates agree bitwise for identical draws.

    ``snr_linear`` may be a scalar, or an array broadcastable against
    ``true_channel`` (the session-batch engine passes per-coherence-
    interval SNRs of shape ``(n_queries, 1)`` with channels of shape
    ``(n_queries, n_subcarriers)``).

    Raises:
        ValueError: for non-positive SNR or training count.
    """
    snr = np.asarray(snr_linear, dtype=float)
    if np.any(snr <= 0):
        raise ValueError(f"SNR must be > 0, got {snr_linear}")
    if n_training_symbols < 1:
        raise ValueError(
            f"need >= 1 training symbol, got {n_training_symbols}"
        )
    h = np.asarray(true_channel, dtype=complex)
    if snr.ndim == 0:
        # Preserve the original scalar expression (scalar sqrt then
        # array divide) so existing callers stay bitwise unchanged.
        return np.abs(h) / np.sqrt(2.0 * float(snr) * n_training_symbols)
    return np.abs(h) / np.sqrt(2.0 * snr * n_training_symbols)


def per_subcarrier_sinr(
    actual_channel: np.ndarray,
    estimate: np.ndarray,
    snr_linear: float,
) -> np.ndarray:
    """Post-equalization SINR per subcarrier.

    Args:
        actual_channel: true channel during the symbol(s) being decoded.
        estimate: the receiver's (preamble-time) channel estimate.
        snr_linear: transmit-referred SNR, i.e. ``P / N`` for a unit-gain
            channel.  The per-subcarrier received SNR is then
            ``snr_linear * |h|^2`` — pass the value for which ``|h|`` of the
            *direct* channel has already been normalised out, or a raw
            ``P/N`` with unnormalised channels; the formula is consistent
            either way.

    Returns:
        Array of linear SINRs, one per subcarrier.
    """
    h_a = np.asarray(actual_channel, dtype=complex)
    h_e = np.asarray(estimate, dtype=complex)
    if h_a.shape != h_e.shape:
        raise ValueError(
            f"shape mismatch: actual {h_a.shape} vs estimate {h_e.shape}"
        )
    if snr_linear <= 0:
        raise ValueError(f"SNR must be > 0, got {snr_linear}")
    ratio = np.divide(
        h_a, h_e, out=np.zeros_like(h_a), where=np.abs(h_e) > 0
    )
    mismatch = np.abs(ratio - 1.0) ** 2
    noise = 1.0 / (snr_linear * np.maximum(np.abs(h_e) ** 2, 1e-30))
    return 1.0 / (mismatch + noise)


def eesm_effective_sinr(
    sinrs_linear: np.ndarray, modulation: Modulation
) -> float:
    """Exponential effective SNR mapping across subcarriers.

    ``SINR_eff = -beta * ln( mean( exp(-SINR_k / beta) ) )``

    EESM compresses a frequency-selective SINR vector into the single AWGN
    SINR that yields the same coded error rate; ``beta`` is calibrated per
    modulation.
    """
    sinrs = np.asarray(sinrs_linear, dtype=float)
    if sinrs.size == 0:
        raise ValueError("need at least one subcarrier SINR")
    if np.any(sinrs < 0):
        raise ValueError("SINRs must be non-negative")
    beta = EESM_BETA[modulation]
    # Log-sum-exp formulation anchored at the minimum SINR: numerically
    # stable for arbitrarily large/small SINRs, and exactly equal to the
    # textbook expression.
    minimum = float(np.min(sinrs))
    shifted = np.exp(-(sinrs - minimum) / beta)  # entries in (0, 1]
    return minimum - beta * float(np.log(np.mean(shifted)))


def eesm_effective_sinr_batch(
    sinrs_linear: np.ndarray, modulation: Modulation
) -> np.ndarray:
    """Row-wise :func:`eesm_effective_sinr` for a ``(k, n)`` SINR matrix.

    Applies the identical anchored log-sum-exp along the last axis.
    Reductions along the contiguous last axis of a 2-D array use the same
    pairwise summation as their 1-D counterparts, so each row's result is
    bitwise equal to the scalar function applied to that row (asserted by
    the fast-path equivalence tests).

    Args:
        sinrs_linear: ``(k, n_subcarriers)`` matrix, one row per subframe.

    Returns:
        Length-``k`` vector of effective SINRs.
    """
    sinrs = np.ascontiguousarray(sinrs_linear, dtype=float)
    if sinrs.ndim != 2 or sinrs.shape[1] == 0:
        raise ValueError(
            f"need a (k, n_subcarriers) matrix, got shape {sinrs.shape}"
        )
    if np.any(sinrs < 0):
        raise ValueError("SINRs must be non-negative")
    beta = EESM_BETA[modulation]
    minimum = np.min(sinrs, axis=1)
    shifted = np.exp(-(sinrs - minimum[:, None]) / beta)
    return minimum - beta * np.log(np.mean(shifted, axis=1))
