"""Secondary-channel interference from channel-shifting backscatter tags.

Paper §1 (requirement 4) and §2: HitchHike/FreeRider/MOXcatter reflect
the excitation signal onto an adjacent channel *without carrier sensing* —
their tags cannot afford receive chains — so every backscatter burst is a
potential collision for WiFi devices legitimately operating on that
channel.  WiTAG never emits on a second channel: its queries are ordinary
CSMA-respecting transmissions on the primary channel, and the tag only
modulates those.

This module quantifies the difference with a standard unslotted-ALOHA
vulnerability-window argument: a victim frame of airtime ``T_v`` collides
with a tag burst of airtime ``T_b`` arriving as a Poisson process of rate
``lambda`` with probability ``1 - exp(-lambda (T_v + T_b))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class VictimNetwork:
    """A WiFi network operating on the tag's secondary channel.

    Attributes:
        frame_airtime_s: airtime of a typical victim frame.
        offered_load_fps: victim frames per second.
        retry_limit: MAC retries before a frame is dropped.
    """

    frame_airtime_s: float = 1.5e-3
    offered_load_fps: float = 200.0
    retry_limit: int = 4

    def __post_init__(self) -> None:
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")
        if self.offered_load_fps < 0:
            raise ValueError("offered load cannot be negative")
        if self.retry_limit < 0:
            raise ValueError("retry limit cannot be negative")


@dataclass(frozen=True)
class BackscatterEmitter:
    """A backscatter tag's emission pattern onto the secondary channel.

    Attributes:
        burst_airtime_s: duration of one backscatter burst (the excitation
            packet's airtime — the tag reflects for the whole packet).
        bursts_per_second: how often the tag is excited and reflects.
        carrier_senses: whether the emitter defers to ongoing victim
            transmissions (True only for systems with a receive chain —
            none of the modelled tags, and WiTAG needs no emission at all).
    """

    burst_airtime_s: float = 1.5e-3
    bursts_per_second: float = 600.0
    carrier_senses: bool = False

    def __post_init__(self) -> None:
        if self.burst_airtime_s < 0 or self.bursts_per_second < 0:
            raise ValueError("emission parameters cannot be negative")

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the emitter occupies the secondary channel."""
        return min(1.0, self.burst_airtime_s * self.bursts_per_second)


def collision_probability(
    victim: VictimNetwork, emitter: BackscatterEmitter
) -> float:
    """P(one victim frame overlaps >= 1 non-sensing tag burst).

    Unslotted-ALOHA vulnerability window: a burst starting anywhere within
    ``T_v + T_b`` of the victim frame's start overlaps it.
    """
    if emitter.bursts_per_second == 0 or emitter.burst_airtime_s == 0:
        return 0.0
    if emitter.carrier_senses:
        # A sensing emitter defers; residual collisions (hidden terminals)
        # are out of scope — CSMA fairness is modelled in repro.mac.csma.
        return 0.0
    window = victim.frame_airtime_s + emitter.burst_airtime_s
    return 1.0 - math.exp(-emitter.bursts_per_second * window)


def victim_goodput_fraction(
    victim: VictimNetwork, emitter: BackscatterEmitter
) -> float:
    """Victim frames eventually delivered, after MAC retries.

    Each (re)transmission independently risks collision; a frame is lost
    only if all ``1 + retry_limit`` attempts collide.
    """
    p = collision_probability(victim, emitter)
    return 1.0 - p ** (1 + victim.retry_limit)


def victim_airtime_overhead(
    victim: VictimNetwork, emitter: BackscatterEmitter
) -> float:
    """Mean transmissions per delivered frame (airtime inflation factor).

    ``E[attempts] = (1 - p^(R+1)) / (1 - p)`` truncated-geometric mean,
    normalised per *delivered* frame.
    """
    p = collision_probability(victim, emitter)
    if p >= 1.0:
        return float(victim.retry_limit + 1)
    attempts = (1.0 - p ** (victim.retry_limit + 1)) / (1.0 - p)
    delivered = 1.0 - p ** (victim.retry_limit + 1)
    return attempts / delivered if delivered > 0 else float("inf")


def witag_emitter() -> BackscatterEmitter:
    """WiTAG's secondary-channel emission: none at all."""
    return BackscatterEmitter(
        burst_airtime_s=0.0, bursts_per_second=0.0, carrier_senses=True
    )


def channel_shift_emitter(
    queries_per_second: float = 600.0, excitation_airtime_s: float = 1.5e-3
) -> BackscatterEmitter:
    """A HitchHike/FreeRider/MOXcatter-class tag in active operation.

    Reflects every excitation packet onto the adjacent channel; at the
    paper's operating rates (hundreds of excitations per second for
    Kbps-scale tag rates) this is a substantial duty cycle.
    """
    return BackscatterEmitter(
        burst_airtime_s=excitation_airtime_s,
        bursts_per_second=queries_per_second,
        carrier_senses=False,
    )
