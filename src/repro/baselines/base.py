"""Common interface for backscatter-system behavioural models.

The paper's comparison (§1, §2, §7) is qualitative — which standards a
system supports, whether it tolerates encryption, whether it interferes
with other channels, what oscillator it needs — plus reported throughput
ranges.  Each baseline encodes its published characteristics behind one
interface so the compatibility bench (E6) can evaluate every system
against every network configuration mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..tag.power import PowerBudget


class WifiStandard(enum.Enum):
    """802.11 PHY generations relevant to the comparison."""

    DOT11B = "802.11b"
    DOT11G = "802.11g"
    DOT11N = "802.11n"
    DOT11AC = "802.11ac"
    DOT11AX = "802.11ax"


class Security(enum.Enum):
    """Network security configurations."""

    OPEN = "open"
    WEP = "wep"
    WPA = "wpa/wpa2"


@dataclass(frozen=True)
class NetworkProfile:
    """A deployment environment a backscatter system must live in."""

    standard: WifiStandard
    security: Security = Security.OPEN
    temperature_stable: bool = True

    def describe(self) -> str:
        parts = [self.standard.value, self.security.value]
        if not self.temperature_stable:
            parts.append("temp-varying")
        return " / ".join(parts)


@dataclass(frozen=True)
class CompatibilityVerdict:
    """Whether (and why not) a system operates on a network profile."""

    compatible: bool
    reasons: tuple[str, ...] = ()

    @classmethod
    def ok(cls) -> "CompatibilityVerdict":
        return cls(compatible=True)

    @classmethod
    def fail(cls, *reasons: str) -> "CompatibilityVerdict":
        return cls(compatible=False, reasons=tuple(reasons))


@dataclass(frozen=True)
class BackscatterSystemModel:
    """Published characteristics of one backscatter system.

    Attributes:
        name: system name.
        supported_standards: PHY generations the tag can ride on.
        works_with_encryption: survives WEP/WPA ciphertext (only WiTAG,
            which never rewrites symbols).
        requires_modified_ap: needs AP software/hardware changes.
        requires_extra_receiver: needs a second AP / dedicated receiver.
        shifts_channel: reflects onto a secondary channel (interference +
            high-frequency oscillator implications).
        performs_carrier_sense: whether its emissions respect CSMA.
        oscillator_hz: minimum clock rate the tag needs.
        power_budget: modelled tag power budget.
        reported_throughput_bps: (low, high) from the respective papers.
    """

    name: str
    supported_standards: frozenset[WifiStandard]
    works_with_encryption: bool
    requires_modified_ap: bool
    requires_extra_receiver: bool
    shifts_channel: bool
    performs_carrier_sense: bool
    oscillator_hz: float
    power_budget: PowerBudget
    reported_throughput_bps: tuple[float, float]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def compatibility(self, profile: NetworkProfile) -> CompatibilityVerdict:
        """Evaluate deployability on a network profile."""
        reasons: list[str] = []
        if profile.standard not in self.supported_standards:
            reasons.append(
                f"does not support {profile.standard.value}"
            )
        if profile.security is not Security.OPEN and not self.works_with_encryption:
            reasons.append(
                f"cannot operate on {profile.security.value} networks "
                "(modifies protected symbols)"
            )
        if self.requires_modified_ap:
            reasons.append("requires modified AP software/hardware")
        if self.requires_extra_receiver:
            reasons.append("requires an additional receiver/AP")
        if not profile.temperature_stable and self.oscillator_hz >= 1e6:
            # MHz clocks on a harvesting budget imply a ring oscillator,
            # whose drift breaks channel shifting when temperature moves
            # (paper §7 footnote 4).
            reasons.append(
                "ring-oscillator drift breaks channel shifting under "
                "temperature variation"
            )
        if reasons:
            return CompatibilityVerdict.fail(*reasons)
        return CompatibilityVerdict.ok()

    @property
    def interferes_with_others(self) -> bool:
        """Emits onto another channel without sensing it first."""
        return self.shifts_channel and not self.performs_carrier_sense
