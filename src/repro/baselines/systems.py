"""Behavioural models of the prior systems WiTAG compares against.

Characteristics are taken from the papers as summarised in WiTAG §1/§2/§7:

* **HitchHike** (Zhang et al., SenSys 2016): 802.11b codeword translation,
  shifts to a non-overlapping channel, needs a second AP and driver
  changes, breaks on encrypted networks.
* **FreeRider** (Zhang et al., CoNEXT 2017): extends the idea to 802.11g
  OFDM by phase-rotating symbols; same channel-shift limitations.
* **MOXcatter** (Zhao et al., MobiSys 2018): spatial-stream backscatter
  for 802.11n MIMO; per-packet (not per-symbol) phase flips; still shifts
  channels and needs modified APs.
* **Passive Wi-Fi** (Kellogg et al., NSDI 2016): generates 802.11b
  transmissions by backscattering a dedicated CW plugged-in helper — not
  deployable on unmodified infrastructure.
* **BackFi** (Bharadia et al., SIGCOMM 2015): high-throughput but needs a
  full-duplex specialized reader.

Throughput ranges are the figures the papers report (WiTAG §6.2 cites the
field as "1 Kbps - 300 Kbps").
"""

from __future__ import annotations

from ..tag.oscillator import Oscillator, OscillatorKind
from ..tag.power import (
    PowerBudget,
    channel_shift_ring_budget,
    tag_budget,
    witag_budget,
)
from .base import BackscatterSystemModel, WifiStandard

_ALL_OFDM = frozenset(
    {
        WifiStandard.DOT11N,
        WifiStandard.DOT11AC,
        WifiStandard.DOT11AX,
    }
)


def witag_model() -> BackscatterSystemModel:
    """WiTAG itself, for side-by-side comparison."""
    return BackscatterSystemModel(
        name="WiTAG",
        supported_standards=_ALL_OFDM,
        works_with_encryption=True,
        requires_modified_ap=False,
        requires_extra_receiver=False,
        shifts_channel=False,
        performs_carrier_sense=True,  # the *client* senses; the tag never emits
        oscillator_hz=50e3,
        power_budget=witag_budget(),
        reported_throughput_bps=(39e3, 40e3),
        notes=(
            "corrupts MAC subframes; AP and client unmodified",
            "reads data out of standard block ACKs",
        ),
    )


def hitchhike_model() -> BackscatterSystemModel:
    """HitchHike (SenSys 2016)."""
    return BackscatterSystemModel(
        name="HitchHike",
        supported_standards=frozenset({WifiStandard.DOT11B}),
        works_with_encryption=False,
        requires_modified_ap=True,
        requires_extra_receiver=True,
        shifts_channel=True,
        performs_carrier_sense=False,
        oscillator_hz=20e6,
        power_budget=channel_shift_ring_budget("HitchHike"),
        reported_throughput_bps=(222e3, 300e3),
        notes=(
            "802.11b codeword translation",
            "needs APs configured to accept CRC-failing frames",
        ),
    )


def freerider_model() -> BackscatterSystemModel:
    """FreeRider (CoNEXT 2017)."""
    return BackscatterSystemModel(
        name="FreeRider",
        supported_standards=frozenset(
            {WifiStandard.DOT11G}
        ),
        works_with_encryption=False,
        requires_modified_ap=True,
        requires_extra_receiver=True,
        shifts_channel=True,
        performs_carrier_sense=False,
        oscillator_hz=20e6,
        power_budget=channel_shift_ring_budget("FreeRider"),
        reported_throughput_bps=(15e3, 60e3),
        notes=("OFDM symbol phase rotation on 802.11g",),
    )


def moxcatter_model() -> BackscatterSystemModel:
    """MOXcatter (MobiSys 2018)."""
    return BackscatterSystemModel(
        name="MOXcatter",
        supported_standards=frozenset(
            {WifiStandard.DOT11N, WifiStandard.DOT11AC}
        ),
        works_with_encryption=False,
        requires_modified_ap=True,
        requires_extra_receiver=True,
        shifts_channel=True,
        performs_carrier_sense=False,
        oscillator_hz=20e6,
        power_budget=channel_shift_ring_budget("MOXcatter"),
        reported_throughput_bps=(1e3, 50e3),
        notes=("per-packet phase flips on MIMO spatial streams",),
    )


def passive_wifi_model() -> BackscatterSystemModel:
    """Passive Wi-Fi (NSDI 2016)."""
    return BackscatterSystemModel(
        name="Passive Wi-Fi",
        supported_standards=frozenset({WifiStandard.DOT11B}),
        works_with_encryption=False,
        requires_modified_ap=True,
        requires_extra_receiver=True,  # dedicated CW plugged-in emitter
        shifts_channel=False,
        performs_carrier_sense=False,
        oscillator_hz=11e6,
        power_budget=tag_budget(
            "Passive Wi-Fi",
            Oscillator(
                kind=OscillatorKind.RING,
                nominal_hz=11e6,
                power_coeff_uw_per_hz2=1e-13,
                base_power_uw=1.0,
                temp_drift_ppm_per_c=6000.0,
            ),
        ),
        reported_throughput_bps=(1e6, 11e6),
        notes=("requires a dedicated continuous-wave helper device",),
    )


def backfi_model() -> BackscatterSystemModel:
    """BackFi (SIGCOMM 2015)."""
    return BackscatterSystemModel(
        name="BackFi",
        supported_standards=frozenset({WifiStandard.DOT11G}),
        works_with_encryption=False,
        requires_modified_ap=True,
        requires_extra_receiver=True,  # full-duplex reader hardware
        shifts_channel=False,
        performs_carrier_sense=False,
        oscillator_hz=20e6,
        power_budget=channel_shift_ring_budget("BackFi"),
        reported_throughput_bps=(1e6, 5e6),
        notes=("full-duplex specialized reader",),
    )


def all_systems() -> list[BackscatterSystemModel]:
    """Every modelled system, WiTAG first."""
    return [
        witag_model(),
        hitchhike_model(),
        freerider_model(),
        moxcatter_model(),
        passive_wifi_model(),
        backfi_model(),
    ]
