"""Behavioural models of prior WiFi-backscatter systems (paper §2).

HitchHike, FreeRider, MOXcatter, Passive Wi-Fi and BackFi, each encoding
its published capabilities and limitations, plus the machinery to evaluate
all of them — and WiTAG — against the paper's four requirements.
"""

from .base import (
    BackscatterSystemModel,
    CompatibilityVerdict,
    NetworkProfile,
    Security,
    WifiStandard,
)
from .comparison import (
    RequirementScore,
    compatibility_matrix,
    default_profiles,
    render_requirement_table,
    requirement_matrix,
    score_requirements,
)
from .systems import (
    all_systems,
    backfi_model,
    freerider_model,
    hitchhike_model,
    moxcatter_model,
    passive_wifi_model,
    witag_model,
)

__all__ = [
    "BackscatterSystemModel",
    "CompatibilityVerdict",
    "NetworkProfile",
    "RequirementScore",
    "Security",
    "WifiStandard",
    "all_systems",
    "backfi_model",
    "compatibility_matrix",
    "default_profiles",
    "freerider_model",
    "hitchhike_model",
    "moxcatter_model",
    "passive_wifi_model",
    "render_requirement_table",
    "requirement_matrix",
    "score_requirements",
    "witag_model",
]
