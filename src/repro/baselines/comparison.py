"""Compatibility and requirements comparison (paper §1's four requirements).

Builds the matrix behind the paper's core argument: across modern network
profiles (802.11n/ac, WPA-encrypted, unmodified APs), only WiTAG satisfies
all four requirements — WiFi compatible, works with encryption, low power,
non-interfering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.reporting import Table
from .base import (
    BackscatterSystemModel,
    NetworkProfile,
    Security,
    WifiStandard,
)
from .systems import all_systems


@dataclass(frozen=True)
class RequirementScore:
    """The paper's four requirements evaluated for one system."""

    system: str
    wifi_compatible: bool
    works_with_encryption: bool
    low_power: bool
    non_interfering: bool

    @property
    def satisfies_all(self) -> bool:
        return (
            self.wifi_compatible
            and self.works_with_encryption
            and self.low_power
            and self.non_interfering
        )


def score_requirements(model: BackscatterSystemModel) -> RequirementScore:
    """Evaluate the §1 requirements for one system.

    'WiFi compatible' means: works on 802.11n *and* ac with unmodified
    commodity APs and no extra receivers.  'Low power' means a budget a
    harvester can sustain (< 100 uW, see
    :meth:`repro.tag.power.PowerBudget.battery_free_feasible`) *with a
    temperature-robust clock* — MHz precision oscillators are excluded by
    power, MHz ring oscillators by stability, so channel-shifting designs
    fail one way or the other (paper §7).
    """
    modern = {WifiStandard.DOT11N, WifiStandard.DOT11AC}
    wifi_compatible = (
        modern <= model.supported_standards
        and not model.requires_modified_ap
        and not model.requires_extra_receiver
    )
    low_power = (
        model.power_budget.battery_free_feasible
        and model.oscillator_hz < 1e6
    )
    return RequirementScore(
        system=model.name,
        wifi_compatible=wifi_compatible,
        works_with_encryption=model.works_with_encryption,
        low_power=low_power,
        non_interfering=not model.interferes_with_others,
    )


def requirement_matrix(
    systems: list[BackscatterSystemModel] | None = None,
) -> list[RequirementScore]:
    """Score every system against the paper's four requirements."""
    return [score_requirements(m) for m in systems or all_systems()]


def compatibility_matrix(
    profiles: list[NetworkProfile],
    systems: list[BackscatterSystemModel] | None = None,
) -> dict[tuple[str, str], bool]:
    """(system, profile) -> deployable, across the given profiles."""
    result: dict[tuple[str, str], bool] = {}
    for model in systems or all_systems():
        for profile in profiles:
            verdict = model.compatibility(profile)
            result[(model.name, profile.describe())] = verdict.compatible
    return result


def default_profiles() -> list[NetworkProfile]:
    """The network profiles the paper's argument revolves around."""
    return [
        NetworkProfile(WifiStandard.DOT11B, Security.OPEN),
        NetworkProfile(WifiStandard.DOT11N, Security.OPEN),
        NetworkProfile(WifiStandard.DOT11N, Security.WPA),
        NetworkProfile(WifiStandard.DOT11AC, Security.WPA),
        NetworkProfile(
            WifiStandard.DOT11N, Security.WPA, temperature_stable=False
        ),
    ]


def render_requirement_table(
    scores: list[RequirementScore] | None = None,
) -> str:
    """The §1 requirements table as text."""
    scores = scores or requirement_matrix()
    table = Table(
        "Backscatter system requirements (paper Section 1)",
        [
            "system",
            "WiFi compatible",
            "works w/ encryption",
            "low power",
            "non-interfering",
            "ALL",
        ],
    )
    for s in scores:
        table.add_row(
            [
                s.system,
                s.wifi_compatible,
                s.works_with_encryption,
                s.low_power,
                s.non_interfering,
                s.satisfies_all,
            ]
        )
    return table.render()
