"""Deterministic random-stream derivation (dependency-free substrate).

This is the implementation behind :mod:`repro.sim.rng`, the public
seeding facade.  It lives at the package root, importing nothing but
``numpy``, so that every layer (``phy``, ``mac``, ``tag``, ``core``)
can route its default randomness through one audited derivation point
without creating import cycles through ``repro.sim``.

Three rules keep experiments reproducible and fork-safe:

1. every stochastic component draws from its own generator, never a
   shared or module-level one;
2. generators derive from a root seed via ``SeedSequence`` spawning, so
   streams are independent and a child depends only on the root entropy
   and its spawn key — not on sibling count, process id, or import
   order;
3. parallel work units derive per-unit substreams with
   :func:`child_sequence` / :func:`substream`, which is what makes the
   runner's results bit-identical for any worker count.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "child_sequence",
    "component_rng",
    "derived_seed",
    "named_rngs",
    "spawn_rngs",
    "substream",
]


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from one seed."""
    if count < 1:
        raise ValueError("count must be >= 1")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def named_rngs(seed: int, *names: str) -> dict[str, np.random.Generator]:
    """Create independent generators keyed by component name.

    Example:
        >>> rngs = named_rngs(7, "channel", "tag", "data")
        >>> sorted(rngs)
        ['channel', 'data', 'tag']
    """
    if not names:
        raise ValueError("provide at least one stream name")
    if len(set(names)) != len(names):
        raise ValueError("stream names must be unique")
    generators = spawn_rngs(seed, len(names))
    return dict(zip(names, generators))


def child_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The ``index``-th SeedSequence child of a root seed.

    Equivalent to ``np.random.SeedSequence(seed).spawn(n)[index]`` for
    any ``n > index``: a child's stream depends only on the root entropy
    and its own spawn key, never on how many siblings were spawned.
    This is the property the parallel runner's determinism contract
    rests on — work unit ``index`` draws the same bits no matter how
    units are batched or scheduled across workers.
    """
    if index < 0:
        raise ValueError("index must be >= 0")
    return np.random.SeedSequence(seed, spawn_key=(index,))


def substream(seed: int, index: int) -> np.random.Generator:
    """Independent generator for work unit ``index`` of root ``seed``."""
    return np.random.default_rng(child_sequence(seed, index))


def derived_seed(seed: int, index: int) -> int:
    """A plain integer seed for work unit ``index`` of root ``seed``.

    For APIs that take ``seed: int`` (scenario builders, legacy helpers)
    rather than a Generator.  Stable across processes and worker counts.
    """
    return int(child_sequence(seed, index).generate_state(1)[0])


def component_rng(name: str, seed: int = 0) -> np.random.Generator:
    """Deterministic default stream for a named component.

    Default-constructed ``np.random.default_rng(<literal>)`` fields are
    a cross-process seeding hazard: every instance (and every forked
    worker that builds one) replays the identical stream.  Components
    that want a reproducible *default* should instead derive it here,
    keyed by the component name, so distinct components never collide
    and the derivation is auditable in one place.  Parallel code must
    still pass explicit per-unit generators (see :func:`substream`).
    """
    if not name:
        raise ValueError("component name must be non-empty")
    key = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(0x5EED, key))
    )
