"""CSMA/CA (DCF/EDCA) channel-access model.

WiTAG's non-interference claim (paper §1, §4) rests on the fact that query
frames are *ordinary* WiFi transmissions: the client contends for the
channel with standard carrier sensing and backoff, and the tag itself
never emits on another channel.  This module models the distributed
coordination function so that the end-to-end simulator can account for
contention overhead in tag throughput, and so the non-interference
comparison against HitchHike/FreeRider-style systems (which reflect onto a
secondary channel *without* sensing) can be quantified.

The model is the classic slotted contention abstraction: per transmission
attempt, a station waits DIFS + a uniform backoff drawn from its current
contention window, freezing while others transmit.  It is deliberately a
transmission-cycle model rather than a full event-driven MAC — adequate
for throughput/interference accounting, and validated against Bianchi-style
saturation behaviour in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phy.constants import DIFS_5GHZ_S, SIFS_5GHZ_S, SLOT_TIME_S
from ..seeding import component_rng


@dataclass(frozen=True)
class DcfParameters:
    """DCF/EDCA contention parameters.

    Defaults are the 802.11 best-effort access category.
    """

    cw_min: int = 15
    cw_max: int = 1023
    slot_s: float = SLOT_TIME_S
    difs_s: float = DIFS_5GHZ_S
    sifs_s: float = SIFS_5GHZ_S

    def __post_init__(self) -> None:
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError(
                f"need 1 <= cw_min <= cw_max, got {self.cw_min}/{self.cw_max}"
            )


@dataclass
class DcfStation:
    """One contending station's backoff state."""

    params: DcfParameters = field(default_factory=DcfParameters)
    retry_count: int = 0

    def contention_window(self) -> int:
        """Current CW after ``retry_count`` doublings, capped at cw_max."""
        cw = (self.params.cw_min + 1) * (2**self.retry_count) - 1
        return min(cw, self.params.cw_max)

    def draw_backoff_slots(self, rng: np.random.Generator) -> int:
        """Uniform backoff draw from [0, CW]."""
        return int(rng.integers(0, self.contention_window() + 1))

    def on_failure(self) -> None:
        """Double the window after a failed transmission."""
        self.retry_count += 1

    def on_success(self) -> None:
        """Reset the window after a successful transmission."""
        self.retry_count = 0


@dataclass
class ContentionModel:
    """Mean channel-access overhead with ``n_contenders`` other stations.

    For tag-throughput accounting we need the expected time a WiTAG client
    spends acquiring the channel per query cycle:

        ``E[access] = DIFS + E[backoff slots] * slot + E[wait for others]``

    The wait term uses a simple persistent-traffic abstraction: each
    contender occupies the channel for ``busy_s`` with probability
    ``activity`` during our backoff countdown.
    """

    params: DcfParameters = field(default_factory=DcfParameters)
    n_contenders: int = 0
    contender_busy_s: float = 1.5e-3
    contender_activity: float = 0.1
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("csma")
    )

    def __post_init__(self) -> None:
        if self.n_contenders < 0:
            raise ValueError("n_contenders must be >= 0")
        if not 0.0 <= self.contender_activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        self._station = DcfStation(self.params)
        #: FIFO of per-attempt activity overrides (see push_activity).
        self._activity_queue: list[float] = []

    def push_activity(self, activity: float) -> None:
        """Queue a one-shot activity override for the next access draw.

        Dynamic-traffic drivers (:mod:`repro.traffic`) model a channel
        whose load changes between transmission opportunities: before
        each query they push the upcoming window's busy fraction, and
        the next :meth:`sample_access_delay_s` call consumes it instead
        of the static :attr:`contender_activity`.  Overrides drain in
        FIFO order, so a batch engine that pre-draws a whole chunk of
        access delays sees exactly the per-query activities the scalar
        loop would — the queue is what keeps dynamic contention inside
        the bitwise tier-equivalence contract.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        self._activity_queue.append(float(activity))

    def _next_activity(self) -> float:
        if self._activity_queue:
            return self._activity_queue.pop(0)
        return self.contender_activity

    def sample_access_delay_s(self) -> float:
        """Draw one channel-access delay for a transmission attempt."""
        activity = self._next_activity()
        slots = self._station.draw_backoff_slots(self.rng)
        delay = self.params.difs_s + slots * self.params.slot_s
        if self.n_contenders and activity > 0.0:
            # Each countdown slot may be interrupted by a busy contender.
            p_busy = 1.0 - (1.0 - activity) ** self.n_contenders
            interruptions = self.rng.binomial(max(slots, 1), min(p_busy, 1.0))
            delay += interruptions * self.contender_busy_s
        return delay

    def mean_access_delay_s(self, activity: float | None = None) -> float:
        """Expected access delay (analytic, no sampling).

        Args:
            activity: evaluate at this busy fraction instead of the
                model's static :attr:`contender_activity` (the dynamic
                traffic layer uses this for its monotonicity contract:
                the expectation is nondecreasing in both ``activity``
                and ``n_contenders``).
        """
        if activity is None:
            activity = self.contender_activity
        elif not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        mean_slots = self._station.contention_window() / 2.0
        delay = self.params.difs_s + mean_slots * self.params.slot_s
        if self.n_contenders and activity > 0.0:
            p_busy = 1.0 - (1.0 - activity) ** self.n_contenders
            delay += mean_slots * p_busy * self.contender_busy_s
        return delay
