"""802.11 management frames: beacons, probes, association.

WiTAG deploys on *existing* WiFi networks (paper §1): before any query is
sent, the client has discovered the AP from its beacons and associated
normally.  This module provides that management plane — byte-accurate
beacon / probe / (re)association frames with information elements — so a
simulated deployment is a complete network, and so tests can assert that
WiTAG requires nothing from this plane beyond what every client already
does.

Only the elements the scenarios need are implemented: SSID, Supported
Rates, HT Capabilities (whose presence signals A-MPDU support — the one
capability WiTAG actually depends on).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from .addresses import MacAddress
from .crc import fcs_bytes, verify_fcs


class ElementId(enum.IntEnum):
    """Information-element identifiers used here."""

    SSID = 0
    SUPPORTED_RATES = 1
    HT_CAPABILITIES = 45


@dataclass(frozen=True)
class InformationElement:
    """A TLV information element."""

    element_id: int
    body: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.element_id <= 255:
            raise ValueError(f"element id must be 0-255, got {self.element_id}")
        if len(self.body) > 255:
            raise ValueError(
                f"element body of {len(self.body)} bytes exceeds 255"
            )

    def serialize(self) -> bytes:
        return bytes([self.element_id, len(self.body)]) + self.body

    @classmethod
    def parse_all(cls, data: bytes) -> list["InformationElement"]:
        """Parse a concatenated element list.

        Raises:
            ValueError: on truncation.
        """
        elements = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise ValueError("truncated information element header")
            element_id, length = data[offset], data[offset + 1]
            offset += 2
            if offset + length > len(data):
                raise ValueError("truncated information element body")
            elements.append(cls(element_id, data[offset : offset + length]))
            offset += length
        return elements


def ssid_element(ssid: str) -> InformationElement:
    """The SSID element (max 32 bytes of UTF-8)."""
    encoded = ssid.encode()
    if len(encoded) > 32:
        raise ValueError(f"SSID of {len(encoded)} bytes exceeds 32")
    return InformationElement(ElementId.SSID, encoded)


def ht_capabilities_element() -> InformationElement:
    """A minimal HT Capabilities element.

    Its presence advertises 802.11n operation — including A-MPDU RX
    support, the capability WiTAG rides on.  Body: HT cap info (2),
    A-MPDU parameters (1, max length exponent 3 = 65535 bytes), MCS set
    (16), extended caps (2), TX beamforming (4), ASEL (1).
    """
    body = struct.pack("<HB", 0x01CE, 0x03) + bytes(16 + 2 + 4 + 1)
    return InformationElement(ElementId.HT_CAPABILITIES, body)


def supported_rates_element() -> InformationElement:
    """Basic OFDM rate set (6, 9, 12, 18, 24, 36, 48, 54 Mb/s)."""
    rates = bytes(
        rate_500kbps | (0x80 if rate_500kbps == 12 else 0)
        for rate_500kbps in (12, 18, 24, 36, 48, 72, 96, 108)
    )
    return InformationElement(ElementId.SUPPORTED_RATES, rates)


_MGMT_HEADER = "<HH6s6s6sH"
_MGMT_HEADER_BYTES = 24


def _mgmt_header(
    subtype: int, destination: MacAddress, source: MacAddress,
    bssid: MacAddress, sequence: int,
) -> bytes:
    fc = (0 << 2) | (subtype << 4)  # management type
    return struct.pack(
        _MGMT_HEADER,
        fc,
        0,
        bytes(destination),
        bytes(source),
        bytes(bssid),
        (sequence << 4) & 0xFFFF,
    )


@dataclass(frozen=True)
class Beacon:
    """A beacon frame advertising the AP's network.

    Attributes:
        bssid: the AP's address (source and BSSID).
        ssid: network name.
        beacon_interval_tu: beacon period in time units (1 TU = 1024 us).
        capabilities: capability bitmap (bit 0 = ESS, bit 4 = privacy,
            i.e. an encrypted network).
        sequence: sequence number.
    """

    bssid: MacAddress
    ssid: str
    beacon_interval_tu: int = 100
    capabilities: int = 0x0001
    sequence: int = 0
    timestamp_us: int = 0
    extra_elements: tuple[InformationElement, ...] = field(
        default_factory=tuple
    )

    SUBTYPE = 8

    @property
    def privacy(self) -> bool:
        """Whether the network advertises encryption (WEP/WPA bit)."""
        return bool(self.capabilities & 0x0010)

    def serialize(self) -> bytes:
        header = _mgmt_header(
            self.SUBTYPE,
            MacAddress.broadcast(),
            self.bssid,
            self.bssid,
            self.sequence,
        )
        fixed = struct.pack(
            "<QHH",
            self.timestamp_us,
            self.beacon_interval_tu,
            self.capabilities,
        )
        elements = (
            ssid_element(self.ssid).serialize()
            + supported_rates_element().serialize()
            + ht_capabilities_element().serialize()
            + b"".join(e.serialize() for e in self.extra_elements)
        )
        body = header + fixed + elements
        return body + fcs_bytes(body)

    @classmethod
    def parse(cls, data: bytes) -> "Beacon":
        """Parse a serialized beacon, verifying the FCS.

        Raises:
            ValueError: on FCS failure, wrong subtype or truncation.
        """
        if len(data) < _MGMT_HEADER_BYTES + 12 + 4:
            raise ValueError("beacon too short")
        if not verify_fcs(data):
            raise ValueError("FCS check failed")
        fc, _dur, _da, sa, _bssid, seq = struct.unpack(
            _MGMT_HEADER, data[:_MGMT_HEADER_BYTES]
        )
        if (fc >> 2) & 0x3 != 0 or (fc >> 4) & 0xF != cls.SUBTYPE:
            raise ValueError("not a beacon frame")
        timestamp, interval, capabilities = struct.unpack(
            "<QHH", data[_MGMT_HEADER_BYTES : _MGMT_HEADER_BYTES + 12]
        )
        elements = InformationElement.parse_all(
            data[_MGMT_HEADER_BYTES + 12 : -4]
        )
        ssid = ""
        extra = []
        for element in elements:
            if element.element_id == ElementId.SSID:
                ssid = element.body.decode(errors="replace")
            elif element.element_id not in (
                ElementId.SUPPORTED_RATES,
                ElementId.HT_CAPABILITIES,
            ):
                extra.append(element)
        return cls(
            bssid=MacAddress(sa),
            ssid=ssid,
            beacon_interval_tu=interval,
            capabilities=capabilities,
            sequence=(seq >> 4) & 0xFFF,
            timestamp_us=timestamp,
            extra_elements=tuple(extra),
        )

    @property
    def supports_ampdu(self) -> bool:
        """Whether the beacon advertises HT (and with it A-MPDU RX).

        WiTAG's single requirement on the network: frame aggregation.
        (For a parsed beacon this is reflected by the HT element having
        been present; serialization always includes it.)
        """
        return True


@dataclass(frozen=True)
class AssociationRequest:
    """An association request from a client to an AP."""

    client: MacAddress
    bssid: MacAddress
    ssid: str
    capabilities: int = 0x0001
    listen_interval: int = 10
    sequence: int = 0

    SUBTYPE = 0

    def serialize(self) -> bytes:
        header = _mgmt_header(
            self.SUBTYPE, self.bssid, self.client, self.bssid, self.sequence
        )
        fixed = struct.pack("<HH", self.capabilities, self.listen_interval)
        elements = (
            ssid_element(self.ssid).serialize()
            + supported_rates_element().serialize()
            + ht_capabilities_element().serialize()
        )
        body = header + fixed + elements
        return body + fcs_bytes(body)


@dataclass(frozen=True)
class AssociationResponse:
    """The AP's answer: a status and an association ID (AID)."""

    bssid: MacAddress
    client: MacAddress
    status: int = 0  # 0 = success
    aid: int = 1
    sequence: int = 0

    SUBTYPE = 1

    def serialize(self) -> bytes:
        header = _mgmt_header(
            self.SUBTYPE, self.client, self.bssid, self.bssid, self.sequence
        )
        fixed = struct.pack(
            "<HHH", 0x0001, self.status, 0xC000 | self.aid
        )
        body = (
            header
            + fixed
            + supported_rates_element().serialize()
            + ht_capabilities_element().serialize()
        )
        return body + fcs_bytes(body)

    @property
    def success(self) -> bool:
        return self.status == 0


def associate(
    client: MacAddress, beacon: Beacon
) -> tuple[AssociationRequest, AssociationResponse]:
    """The (always-successful, simulated) association handshake.

    Returns the request/response pair a client exchanges with the AP it
    discovered via ``beacon`` — after which WiTAG queries are just normal
    data traffic on the association.
    """
    request = AssociationRequest(
        client=client, bssid=beacon.bssid, ssid=beacon.ssid
    )
    response = AssociationResponse(bssid=beacon.bssid, client=client)
    return request, response
