"""Sequence-number management for the transmit side.

A WiTAG client transmits long runs of query A-MPDUs; each MPDU needs a
fresh modulo-4096 sequence number and each A-MPDU a starting sequence
number (SSN) aligned with the recipient's block-ACK window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .block_ack import BLOCK_ACK_WINDOW, SEQUENCE_MODULUS


@dataclass
class SequenceCounter:
    """Modulo-4096 per-TID sequence number allocator."""

    _next: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self._next < SEQUENCE_MODULUS:
            raise ValueError(f"initial sequence must be 0-4095, got {self._next}")

    @property
    def next_value(self) -> int:
        """The sequence number the next allocation will return."""
        return self._next

    def allocate(self) -> int:
        """Return the next sequence number and advance the counter."""
        value = self._next
        self._next = (self._next + 1) % SEQUENCE_MODULUS
        return value

    def advance(self, count: int) -> None:
        """Consume ``count`` sequence numbers without returning them.

        Equivalent to ``count`` calls of :meth:`allocate` with the values
        discarded — the memoized query builder uses this to keep the
        counter in lockstep when it returns a cached frame instead of
        re-serializing one.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._next = (self._next + count) % SEQUENCE_MODULUS

    def seek(self, value: int) -> None:
        """Reset the counter to ``value`` (memoized-builder rewind)."""
        if not 0 <= value < SEQUENCE_MODULUS:
            raise ValueError(f"sequence must be 0-4095, got {value}")
        self._next = value

    def allocate_block(self, count: int) -> list[int]:
        """Allocate ``count`` consecutive sequence numbers.

        Raises:
            ValueError: if ``count`` exceeds the block-ACK window — an
                A-MPDU cannot contain more MPDUs than one bitmap reports.
        """
        if not 1 <= count <= BLOCK_ACK_WINDOW:
            raise ValueError(
                f"block size must be 1-{BLOCK_ACK_WINDOW}, got {count}"
            )
        return [self.allocate() for _ in range(count)]


@dataclass
class TransmitWindow:
    """Originator-side block-ACK window bookkeeping.

    Tracks which sequence numbers in the current window have been
    acknowledged, supporting the (future-work) retransmission logic and
    the multi-round session layer.
    """

    ssn: int = 0
    acked: set[int] = field(default_factory=set)

    def advance_to(self, ssn: int) -> None:
        """Slide the window to a new SSN, dropping stale state."""
        if not 0 <= ssn < SEQUENCE_MODULUS:
            raise ValueError(f"SSN must be 0-4095, got {ssn}")
        self.ssn = ssn
        self.acked = {
            s for s in self.acked
            if (s - ssn) % SEQUENCE_MODULUS < BLOCK_ACK_WINDOW
        }

    def apply_bitmap(self, ssn: int, bitmap: int) -> list[int]:
        """Record a received block-ACK bitmap; return newly acked seqs."""
        if ssn != self.ssn:
            self.advance_to(ssn)
        newly = []
        for offset in range(BLOCK_ACK_WINDOW):
            if bitmap & (1 << offset):
                seq = (ssn + offset) % SEQUENCE_MODULUS
                if seq not in self.acked:
                    self.acked.add(seq)
                    newly.append(seq)
        return newly
