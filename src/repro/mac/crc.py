"""CRC implementations used by 802.11 framing, built from first principles.

Two checksums matter to WiTAG's mechanism:

* **CRC-32** (the FCS at the end of every MPDU).  A corrupted subframe is
  detected *only* because its FCS fails — this is what turns a tag-induced
  channel change into a `0` in the block-ACK bitmap.
* **CRC-8** over each A-MPDU delimiter, which lets a receiver re-synchronise
  to the next subframe even when an earlier subframe was destroyed.  Without
  delimiter CRCs, one corrupted subframe would take down the rest of the
  aggregate and WiTAG could only send one bit per A-MPDU.

Both are implementations of the standard polynomials: CRC-32 (IEEE 802.3):
reflected 0xEDB88320; CRC-8 (802.11 delimiter): ``x^8 + x^2 + x + 1``
(0x07), initial value 0xFF, output complemented.

Fast paths
----------

Every MPDU serialization computes an FCS, so CRC-32 sits on the query
build hot path (~15% of a simulated query cycle before optimisation).
:func:`crc32` therefore delegates to :func:`zlib.crc32` (C implementation
of the identical IEEE 802.3 polynomial) and :func:`crc16_ccitt` to
:func:`binascii.crc_hqx` (CRC-CCITT, poly 0x1021) when the initial value
allows.  The original table-driven implementations remain as
``*_reference`` functions; ``tests/test_mac_crc_addresses.py``
cross-checks fast vs reference over random payloads.  CRC-8 covers only
2-byte delimiter headers, so its table implementation is already cheap
and has no stdlib equivalent.
"""

from __future__ import annotations

import binascii
import zlib


def _build_crc32_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


def _build_crc8_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table.append(crc)
    return tuple(table)


_CRC32_TABLE = _build_crc32_table()
_CRC8_TABLE = _build_crc8_table()


def crc32_reference(data: bytes) -> int:
    """Table-driven IEEE 802.3 CRC-32 (reference implementation)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _CRC32_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """IEEE 802.3 CRC-32 as used for the 802.11 FCS.

    Delegates to :func:`zlib.crc32` (same polynomial, preset and final
    XOR); :func:`crc32_reference` is the first-principles version.

    Args:
        data: the bytes covered by the FCS (header + body).

    Returns:
        32-bit checksum as an unsigned integer.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def fcs_bytes(data: bytes) -> bytes:
    """The 4-byte FCS field for a frame body (little-endian on air)."""
    return crc32(data).to_bytes(4, "little")


def verify_fcs(frame_with_fcs: bytes) -> bool:
    """Check the trailing 4-byte FCS of a serialized frame.

    Returns False for frames shorter than the FCS itself.
    """
    if len(frame_with_fcs) < 4:
        return False
    body, fcs = frame_with_fcs[:-4], frame_with_fcs[-4:]
    return fcs_bytes(body) == fcs


def crc8(data: bytes) -> int:
    """802.11 A-MPDU delimiter CRC-8 (poly 0x07, init 0xFF, inverted out)."""
    crc = 0xFF
    for byte in data:
        crc = _CRC8_TABLE[crc ^ byte]
    return crc ^ 0xFF


def crc16_ccitt_reference(data: bytes, initial: int = 0xFFFF) -> int:
    """Bit-by-bit CRC-16-CCITT (reference implementation)."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16-CCITT (poly 0x1021), used for tag-message integrity.

    The paper leaves tag-side error detection to future work (§4.1); the
    reproduction's message framing layer uses this checksum so a reader
    can reject corrupted tag messages.  Delegates to
    :func:`binascii.crc_hqx` (the same MSB-first 0x1021 polynomial).
    """
    return binascii.crc_hqx(data, initial & 0xFFFF)
