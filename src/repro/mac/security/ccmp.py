"""CCMP (AES-CCM) encryption of MPDU payloads, as used by WPA2.

CCMP = Counter mode encryption + CBC-MAC authentication (CCM, RFC 3610),
keyed with AES-128.  This is the cipher behind "WPA2-AES"; the reproduction
uses it to demonstrate the paper's claim that WiTAG works with encrypted
networks: the tag corrupts ciphertext subframes, the AP's FCS check fails,
and the block-ACK bit flips — no decryption ever needed by the tag
(paper §1 contribution 1, §2).

The implementation follows RFC 3610 with the 802.11 parameter profile:
M = 8 (MIC length), L = 2 (length field), 13-byte nonce built from the
packet number and transmitter address.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .aes import Aes128, BLOCK_BYTES

MIC_BYTES = 8
#: CCMP header: PN0 PN1 rsvd keyid PN2 PN3 PN4 PN5.
CCMP_HEADER_BYTES = 8
_L = 2  # bytes in the length field
_NONCE_BYTES = 15 - _L


class MicError(ValueError):
    """Raised when the CCMP MIC does not verify (tampered ciphertext)."""


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _pad_block(data: bytes) -> bytes:
    remainder = len(data) % BLOCK_BYTES
    if remainder == 0:
        return data
    return data + b"\x00" * (BLOCK_BYTES - remainder)


def build_nonce(packet_number: int, transmitter: bytes, priority: int = 0) -> bytes:
    """802.11 CCMP nonce: flags/priority octet + TA(6) + PN(6)."""
    if not 0 <= packet_number < 2**48:
        raise ValueError("packet number must fit in 48 bits")
    if len(transmitter) != 6:
        raise ValueError("transmitter address must be 6 bytes")
    if not 0 <= priority <= 15:
        raise ValueError("priority must be 0-15")
    pn = packet_number.to_bytes(6, "big")
    return bytes([priority]) + transmitter + pn


def ccmp_header(packet_number: int, key_id: int = 0) -> bytes:
    """The 8-byte CCMP header inserted after the MAC header."""
    if not 0 <= packet_number < 2**48:
        raise ValueError("packet number must fit in 48 bits")
    if not 0 <= key_id <= 3:
        raise ValueError("key id must be 0-3")
    pn = packet_number.to_bytes(6, "little")
    return bytes(
        [pn[0], pn[1], 0x00, 0x20 | (key_id << 6), pn[2], pn[3], pn[4], pn[5]]
    )


def _cbc_mac(cipher: Aes128, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
    """CCM authentication tag (untruncated block) per RFC 3610."""
    flags = 0x40 if aad else 0x00  # Adata
    flags |= ((MIC_BYTES - 2) // 2) << 3
    flags |= _L - 1
    b0 = bytes([flags]) + nonce + struct.pack(">H", len(plaintext))
    mac = cipher.encrypt_block(b0)
    if aad:
        aad_block = struct.pack(">H", len(aad)) + aad
        aad_block = _pad_block(aad_block)
        for i in range(0, len(aad_block), BLOCK_BYTES):
            mac = cipher.encrypt_block(
                _xor_block(mac, aad_block[i : i + BLOCK_BYTES])
            )
    padded = _pad_block(plaintext)
    for i in range(0, len(padded), BLOCK_BYTES):
        mac = cipher.encrypt_block(_xor_block(mac, padded[i : i + BLOCK_BYTES]))
    return mac


def _ctr_keystream(cipher: Aes128, nonce: bytes, n_blocks: int) -> bytes:
    """CTR keystream blocks A_1..A_n (A_0 is reserved for the MIC)."""
    stream = bytearray()
    for counter in range(1, n_blocks + 1):
        a_i = bytes([_L - 1]) + nonce + struct.pack(">H", counter)
        stream.extend(cipher.encrypt_block(a_i))
    return bytes(stream)


def _mic_mask(cipher: Aes128, nonce: bytes) -> bytes:
    a_0 = bytes([_L - 1]) + nonce + struct.pack(">H", 0)
    return cipher.encrypt_block(a_0)[:MIC_BYTES]


@dataclass
class CcmpContext:
    """A pairwise CCMP context (temporal key + packet-number counter)."""

    temporal_key: bytes
    packet_number: int = 1

    def __post_init__(self) -> None:
        self._cipher = Aes128(self.temporal_key)

    def encrypt(
        self, plaintext: bytes, transmitter: bytes, aad: bytes = b"",
        priority: int = 0,
    ) -> tuple[bytes, int]:
        """Encrypt an MPDU body.

        Returns:
            (protected body, packet number used).  The protected body is
            ``ccmp_header || ciphertext || MIC`` — what would follow the
            MAC header on the air.
        """
        pn = self.packet_number
        self.packet_number += 1
        nonce = build_nonce(pn, transmitter, priority)
        n_blocks = (len(plaintext) + BLOCK_BYTES - 1) // BLOCK_BYTES
        keystream = _ctr_keystream(self._cipher, nonce, n_blocks)
        ciphertext = _xor_block(plaintext, keystream[: len(plaintext)])
        mic_full = _cbc_mac(self._cipher, nonce, aad, plaintext)
        mic = _xor_block(mic_full[:MIC_BYTES], _mic_mask(self._cipher, nonce))
        return ccmp_header(pn) + ciphertext + mic, pn

    def decrypt(
        self, protected: bytes, transmitter: bytes, aad: bytes = b"",
        priority: int = 0,
    ) -> bytes:
        """Decrypt and verify a protected MPDU body.

        Raises:
            MicError: if the MIC fails — e.g. the ciphertext was altered,
                which is exactly what happens when a HitchHike-style tag
                rewrites symbols of an encrypted frame.
            ValueError: if the body is too short to contain header + MIC.
        """
        if len(protected) < CCMP_HEADER_BYTES + MIC_BYTES:
            raise ValueError("protected body too short")
        header = protected[:CCMP_HEADER_BYTES]
        pn_bytes = bytes(
            [header[0], header[1], header[4], header[5], header[6], header[7]]
        )
        pn = int.from_bytes(pn_bytes, "little")
        nonce = build_nonce(pn, transmitter, priority)
        ciphertext = protected[CCMP_HEADER_BYTES:-MIC_BYTES]
        received_mic = protected[-MIC_BYTES:]
        n_blocks = (len(ciphertext) + BLOCK_BYTES - 1) // BLOCK_BYTES
        keystream = _ctr_keystream(self._cipher, nonce, n_blocks)
        plaintext = _xor_block(ciphertext, keystream[: len(ciphertext)])
        mic_full = _cbc_mac(self._cipher, nonce, aad, plaintext)
        expected = _xor_block(
            mic_full[:MIC_BYTES], _mic_mask(self._cipher, nonce)
        )
        if expected != received_mic:
            raise MicError("CCMP MIC verification failed")
        return plaintext
