"""RC4 and WEP encapsulation.

WEP is long broken, but the paper lists "works with WEP" alongside WPA as a
compatibility requirement (§1) because many legacy deployments still used
it in 2018.  The reproduction implements RC4 and the WEP encapsulation
(IV + RC4(IV||key) over payload||ICV) to show that WiTAG is oblivious to
the cipher in use, and that symbol-rewriting baselines break the ICV.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crc import crc32

#: WEP initialisation vector size.
IV_BYTES = 3

#: WEP integrity check value (CRC-32) size.
ICV_BYTES = 4


def rc4_keystream(key: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of RC4 keystream for ``key``."""
    if not key:
        raise ValueError("RC4 key must be non-empty")
    if length < 0:
        raise ValueError("length must be >= 0")
    # Key-scheduling algorithm.
    s = list(range(256))
    j = 0
    for i in range(256):
        j = (j + s[i] + key[i % len(key)]) % 256
        s[i], s[j] = s[j], s[i]
    # Pseudo-random generation algorithm.
    out = bytearray()
    i = j = 0
    for _ in range(length):
        i = (i + 1) % 256
        j = (j + s[i]) % 256
        s[i], s[j] = s[j], s[i]
        out.append(s[(s[i] + s[j]) % 256])
    return bytes(out)


def rc4(key: bytes, data: bytes) -> bytes:
    """RC4 encrypt/decrypt (symmetric)."""
    stream = rc4_keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


class IcvError(ValueError):
    """Raised when the WEP ICV fails after decryption."""


@dataclass
class WepContext:
    """A WEP key context with a rolling IV counter.

    Attributes:
        key: 5-byte (WEP-40) or 13-byte (WEP-104) shared key.
        next_iv: the next IV value to use (24-bit counter).
    """

    key: bytes
    next_iv: int = 0

    def __post_init__(self) -> None:
        if len(self.key) not in (5, 13):
            raise ValueError(
                f"WEP key must be 5 or 13 bytes, got {len(self.key)}"
            )

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encapsulate: returns ``IV || key_id || RC4(payload || ICV)``."""
        iv = self.next_iv.to_bytes(IV_BYTES, "big")
        self.next_iv = (self.next_iv + 1) % (1 << 24)
        icv = crc32(plaintext).to_bytes(ICV_BYTES, "little")
        ciphertext = rc4(iv + self.key, plaintext + icv)
        return iv + b"\x00" + ciphertext

    def decrypt(self, protected: bytes) -> bytes:
        """Decapsulate and verify the ICV.

        Raises:
            IcvError: if the integrity check fails.
            ValueError: if the body is too short.
        """
        if len(protected) < IV_BYTES + 1 + ICV_BYTES:
            raise ValueError("WEP body too short")
        iv = protected[:IV_BYTES]
        ciphertext = protected[IV_BYTES + 1 :]
        plain_and_icv = rc4(iv + self.key, ciphertext)
        plaintext, icv = plain_and_icv[:-ICV_BYTES], plain_and_icv[-ICV_BYTES:]
        if crc32(plaintext).to_bytes(ICV_BYTES, "little") != icv:
            raise IcvError("WEP ICV verification failed")
        return plaintext
