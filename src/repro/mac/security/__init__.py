"""Link-layer security: AES-128 + CCMP (WPA2) and RC4 + WEP, from scratch.

Present to demonstrate — not merely assert — the paper's claim that WiTAG
operates unchanged on encrypted networks while symbol-modifying baselines
cannot (paper §1, §2).
"""

from .aes import Aes128
from .ccmp import CcmpContext, MicError, ccmp_header
from .wep import IcvError, WepContext, rc4, rc4_keystream

__all__ = [
    "Aes128",
    "CcmpContext",
    "IcvError",
    "MicError",
    "WepContext",
    "ccmp_header",
    "rc4",
    "rc4_keystream",
]
