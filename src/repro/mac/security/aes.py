"""Pure-Python AES-128 block cipher, implemented from first principles.

WiTAG's headline compatibility claim is that it works on WPA-encrypted
networks, because the tag corrupts *ciphertext* subframes and never needs
to read or modify plaintext symbols (paper §1, §4).  To demonstrate that
end-to-end, the reproduction encrypts query MPDUs with real CCMP, which
needs AES-128.

This implementation derives the S-box from GF(2^8) arithmetic rather than
hardcoding it, and implements the full key schedule, SubBytes, ShiftRows,
MixColumns and AddRoundKey.  It is validated against the FIPS-197 test
vectors in the test suite.  Performance is adequate for the simulation
workloads here; it is of course not constant-time and must never be used
for actual security.
"""

from __future__ import annotations

BLOCK_BYTES = 16
KEY_BYTES = 16
N_ROUNDS = 10


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES reduction polynomial 0x11B."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 by convention."""
    if a == 0:
        return 0
    # a^254 = a^-1 in GF(2^8) (Fermat).
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    sbox = bytearray(256)
    for value in range(256):
        inv = _gf_inverse(value)
        out = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            out |= b << bit
        sbox[value] = out
    inverse = bytearray(256)
    for i, v in enumerate(sbox):
        inverse[v] = i
    return bytes(sbox), bytes(inverse)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> list[bytes]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 4 * (N_ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = temp[1:] + temp[:1]
            temp = bytes(SBOX[b] for b in rotated)
            temp = bytes([temp[0] ^ _RCON[i // 4 - 1]]) + temp[1:]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(N_ROUNDS + 1)]


def _sub_bytes(state: bytearray, box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: bytearray) -> None:
    # Column-major state: byte index = 4*col + row.
    for row in range(1, 4):
        values = [state[4 * col + row] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            state[4 * col + row] = values[col]


def _inv_shift_rows(state: bytearray) -> None:
    for row in range(1, 4):
        values = [state[4 * col + row] for col in range(4)]
        values = values[-row:] + values[:-row]
        for col in range(4):
            state[4 * col + row] = values[col]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = (
            _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
        )
        state[4 * col + 1] = (
            _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
        )
        state[4 * col + 2] = (
            _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
        )
        state[4 * col + 3] = (
            _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
        )


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class Aes128:
    """AES-128 with a precomputed key schedule.

    Example:
        >>> cipher = Aes128(bytes(16))
        >>> block = cipher.encrypt_block(bytes(16))
        >>> cipher.decrypt_block(block) == bytes(16)
        True
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_BYTES:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, N_ROUNDS):
            _sub_bytes(state, SBOX)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state, SBOX)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[N_ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_BYTES:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[N_ROUNDS])
        _inv_shift_rows(state)
        _sub_bytes(state, INV_SBOX)
        for rnd in range(N_ROUNDS - 1, 0, -1):
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
            _inv_shift_rows(state)
            _sub_bytes(state, INV_SBOX)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
