"""A-MPDU aggregation and deaggregation (802.11n/ac frame aggregation).

Frame aggregation is the MAC feature WiTAG is built on (paper §3.1): many
MPDUs ride inside one PHY frame behind a single channel estimate, and the
receiver reports each MPDU's fate individually through the block ACK.

An A-MPDU is a sequence of subframes, each being::

    +-------------------+-----------+-------------+
    | MPDU delimiter (4)|  MPDU     | pad to 4B   |
    +-------------------+-----------+-------------+

The delimiter carries the MPDU length, a CRC-8 over the length field and
the signature byte ``0x4E`` ('N').  Crucially, delimiters allow the
receiver to *re-synchronise* after a corrupted subframe by scanning forward
for the next valid delimiter — which is exactly why one corrupted WiTAG
subframe (one `0` bit) does not destroy the bits that follow it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .crc import crc8, verify_fcs

#: Delimiter signature byte ('N'), aids resynchronisation scanning.
DELIMITER_SIGNATURE = 0x4E

#: Delimiter size in bytes.
DELIMITER_BYTES = 4

#: Maximum MPDU length representable in an HT delimiter (12-bit field).
MAX_DELIMITED_MPDU_BYTES = 4095


def encode_delimiter(mpdu_length: int) -> bytes:
    """Build a 4-byte MPDU delimiter for an MPDU of ``mpdu_length`` bytes.

    Layout (HT): 4 reserved bits, 12-bit length, CRC-8, signature.
    """
    if not 0 <= mpdu_length <= MAX_DELIMITED_MPDU_BYTES:
        raise ValueError(
            f"MPDU length must be 0-{MAX_DELIMITED_MPDU_BYTES}, "
            f"got {mpdu_length}"
        )
    length_field = mpdu_length & 0x0FFF
    first_two = bytes([length_field & 0xFF, (length_field >> 8) & 0x0F])
    return first_two + bytes([crc8(first_two), DELIMITER_SIGNATURE])


def decode_delimiter(data: bytes) -> int | None:
    """Validate a 4-byte delimiter; return the MPDU length or None.

    A None return means the bytes do not form a valid delimiter (failed
    CRC or missing signature) — the deaggregator then slides forward.
    """
    if len(data) < DELIMITER_BYTES:
        return None
    if data[3] != DELIMITER_SIGNATURE:
        return None
    if crc8(data[:2]) != data[2]:
        return None
    return data[0] | ((data[1] & 0x0F) << 8)


def _padded_length(mpdu_length: int) -> int:
    """Subframe length after padding the MPDU to a 4-byte boundary."""
    return DELIMITER_BYTES + ((mpdu_length + 3) // 4) * 4


@dataclass(frozen=True)
class Subframe:
    """One deaggregated subframe.

    Attributes:
        index: position within the A-MPDU.
        mpdu: the raw MPDU bytes (including its FCS).
        fcs_ok: whether the MPDU's CRC-32 verified.
    """

    index: int
    mpdu: bytes
    fcs_ok: bool


def aggregate(mpdus: list[bytes]) -> bytes:
    """Serialize MPDUs into one A-MPDU (PSDU) with delimiters and padding.

    The final subframe is also padded, matching common implementations
    (the standard allows the last MPDU to be unpadded; padding keeps
    subframe boundaries symbol-aligned, which simplifies tag timing).

    Raises:
        ValueError: for an empty list or oversized MPDUs.
    """
    if not mpdus:
        raise ValueError("an A-MPDU needs at least one MPDU")
    parts: list[bytes] = []
    for mpdu in mpdus:
        if len(mpdu) > MAX_DELIMITED_MPDU_BYTES:
            raise ValueError(
                f"MPDU of {len(mpdu)} bytes exceeds delimiter capacity"
            )
        pad = (-len(mpdu)) % 4
        parts.append(encode_delimiter(len(mpdu)) + mpdu + b"\x00" * pad)
    return b"".join(parts)


def subframe_lengths(mpdus: list[bytes]) -> list[int]:
    """On-air length of each subframe (delimiter + MPDU + padding)."""
    return [_padded_length(len(m)) for m in mpdus]


def deaggregate(psdu: bytes) -> list[Subframe]:
    """Split a PSDU back into subframes, tolerating corruption.

    Walks delimiter-to-delimiter; when a delimiter is invalid (e.g. the
    corruption window covered it), scans forward in 4-byte steps for the
    next valid delimiter, exactly as hardware deaggregators do.  MPDUs
    whose FCS fails are returned with ``fcs_ok=False`` rather than
    dropped, so callers can observe per-subframe fate.
    """
    subframes: list[Subframe] = []
    offset = 0
    index = 0
    n = len(psdu)
    while offset + DELIMITER_BYTES <= n:
        length = decode_delimiter(psdu[offset : offset + DELIMITER_BYTES])
        if length is None:
            offset += 4  # resynchronisation scan
            continue
        start = offset + DELIMITER_BYTES
        end = start + length
        if end > n:
            break  # truncated tail
        mpdu = psdu[start:end]
        subframes.append(
            Subframe(index=index, mpdu=mpdu, fcs_ok=verify_fcs(mpdu))
        )
        index += 1
        offset += _padded_length(length)
    return subframes


def corrupt_range(psdu: bytes, start: int, end: int, *, flip: int = 0xFF) -> bytes:
    """Return a copy of ``psdu`` with bytes in [start, end) XOR-corrupted.

    Used by tests and the corruption microbench to emulate the effect of a
    tag-invalidated channel estimate on a byte range of the PSDU.
    """
    if not 0 <= start <= end <= len(psdu):
        raise ValueError(
            f"corruption window [{start}, {end}) outside PSDU of "
            f"{len(psdu)} bytes"
        )
    body = bytearray(psdu)
    for i in range(start, end):
        body[i] ^= flip
    return bytes(body)
