"""MAC (EUI-48) address type with parsing, formatting and classification."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class MacAddress:
    """An IEEE EUI-48 address.

    Stored as a 6-byte immutable value; construct from bytes or from the
    usual colon-separated string form.
    """

    octets: bytes

    def __post_init__(self) -> None:
        if len(self.octets) != 6:
            raise ValueError(
                f"MAC address needs exactly 6 octets, got {len(self.octets)}"
            )

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (case-insensitive, ``-`` accepted)."""
        parts = text.replace("-", ":").split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address {text!r}")
        try:
            octets = bytes(int(p, 16) for p in parts)
        except ValueError:
            raise ValueError(f"malformed MAC address {text!r}") from None
        return cls(octets)

    @classmethod
    def broadcast(cls) -> "MacAddress":
        """The all-ones broadcast address."""
        return cls(b"\xff" * 6)

    @property
    def is_broadcast(self) -> bool:
        return self.octets == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        """Group bit (LSB of first octet) set."""
        return bool(self.octets[0] & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        """U/L bit (second LSB of first octet) set."""
        return bool(self.octets[0] & 0x02)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.octets)

    def __bytes__(self) -> bytes:
        return self.octets
