"""802.11 MAC frame structures and byte-exact serialization.

Implements the subset of the 802.11 frame zoo that WiTAG touches: QoS data
frames (the MPDUs inside query A-MPDUs — typically *null-payload*, since
query subframes exist only as corruption targets, paper §4.1), block-ACK
request/response control frames, and the generic header machinery they
share.

Serialization follows the standard's little-endian field layout so that
tests can assert real byte offsets and the A-MPDU module can compute true
on-air sizes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from .addresses import MacAddress
from .crc import fcs_bytes, verify_fcs


class FrameType(enum.IntEnum):
    """Two-bit frame type from the Frame Control field."""

    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


class FrameSubtype(enum.IntEnum):
    """Frame subtypes used in this library."""

    QOS_DATA = 8
    QOS_NULL = 12
    BLOCK_ACK_REQ = 8  # control type
    BLOCK_ACK = 9  # control type


@dataclass(frozen=True)
class FrameControl:
    """The 16-bit Frame Control field.

    Attributes:
        ftype: frame type (management/control/data).
        subtype: 4-bit subtype.
        to_ds / from_ds: distribution-system direction bits.
        retry: retransmission flag.
        protected: privacy bit — set when the body is encrypted (WEP/CCMP).
    """

    ftype: FrameType
    subtype: int
    to_ds: bool = False
    from_ds: bool = False
    retry: bool = False
    protected: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.subtype <= 15:
            raise ValueError(f"subtype must be 0-15, got {self.subtype}")

    def to_int(self) -> int:
        """Pack into the 16-bit wire value (protocol version 0)."""
        value = 0
        value |= int(self.ftype) << 2
        value |= self.subtype << 4
        value |= int(self.to_ds) << 8
        value |= int(self.from_ds) << 9
        value |= int(self.retry) << 11
        value |= int(self.protected) << 14
        return value

    @classmethod
    def from_int(cls, value: int) -> "FrameControl":
        """Unpack from the 16-bit wire value."""
        version = value & 0x3
        if version != 0:
            raise ValueError(f"unsupported protocol version {version}")
        return cls(
            ftype=FrameType((value >> 2) & 0x3),
            subtype=(value >> 4) & 0xF,
            to_ds=bool(value & (1 << 8)),
            from_ds=bool(value & (1 << 9)),
            retry=bool(value & (1 << 11)),
            protected=bool(value & (1 << 14)),
        )


@dataclass(frozen=True)
class SequenceControl:
    """Sequence Control: 12-bit sequence number + 4-bit fragment number."""

    sequence: int
    fragment: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sequence < 4096:
            raise ValueError(f"sequence must be 0-4095, got {self.sequence}")
        if not 0 <= self.fragment < 16:
            raise ValueError(f"fragment must be 0-15, got {self.fragment}")

    def to_int(self) -> int:
        return (self.sequence << 4) | self.fragment

    @classmethod
    def from_int(cls, value: int) -> "SequenceControl":
        return cls(sequence=(value >> 4) & 0xFFF, fragment=value & 0xF)


@dataclass(frozen=True)
class QosDataFrame:
    """A QoS data MPDU (the subframe type inside WiTAG query A-MPDUs).

    Attributes:
        receiver / transmitter / destination: address 1/2/3.
        seq: sequence control.
        tid: traffic identifier (0-15) carried in QoS Control; block-ACK
            agreements are per-TID.
        payload: frame body (empty for WiTAG query subframes).
        frame_control: override for flag bits; a default QoS-data FC is
            built when omitted.
    """

    receiver: MacAddress
    transmitter: MacAddress
    destination: MacAddress
    seq: SequenceControl
    tid: int = 0
    payload: bytes = b""
    frame_control: FrameControl | None = None

    HEADER_BYTES = 26  # FC(2) dur(2) addr(18) seq(2) qos(2)
    FCS_BYTES = 4

    def __post_init__(self) -> None:
        if not 0 <= self.tid <= 15:
            raise ValueError(f"TID must be 0-15, got {self.tid}")

    def effective_frame_control(self) -> FrameControl:
        """The frame control actually serialized."""
        if self.frame_control is not None:
            return self.frame_control
        subtype = (
            FrameSubtype.QOS_NULL if not self.payload else FrameSubtype.QOS_DATA
        )
        return FrameControl(FrameType.DATA, int(subtype), to_ds=True)

    def serialize(self, duration_us: int = 0) -> bytes:
        """Serialize to bytes including the trailing FCS."""
        if not 0 <= duration_us <= 0x7FFF:
            raise ValueError(
                f"duration must fit in 15 bits, got {duration_us}"
            )
        header = struct.pack(
            "<HH6s6s6sHH",
            self.effective_frame_control().to_int(),
            duration_us,
            bytes(self.receiver),
            bytes(self.transmitter),
            bytes(self.destination),
            self.seq.to_int(),
            self.tid,  # QoS Control: TID in low bits
        )
        body = header + self.payload
        return body + fcs_bytes(body)

    @property
    def mpdu_bytes(self) -> int:
        """Serialized size including FCS."""
        return self.HEADER_BYTES + len(self.payload) + self.FCS_BYTES

    @classmethod
    def parse(cls, data: bytes) -> "QosDataFrame":
        """Parse a serialized QoS data frame, verifying the FCS.

        Raises:
            ValueError: on truncation or FCS failure.
        """
        if len(data) < cls.HEADER_BYTES + cls.FCS_BYTES:
            raise ValueError(f"frame too short: {len(data)} bytes")
        if not verify_fcs(data):
            raise ValueError("FCS check failed")
        fc_val, duration, a1, a2, a3, seq_val, qos = struct.unpack(
            "<HH6s6s6sHH", data[: cls.HEADER_BYTES]
        )
        fc = FrameControl.from_int(fc_val)
        if fc.ftype is not FrameType.DATA:
            raise ValueError(f"not a data frame: type {fc.ftype}")
        return cls(
            receiver=MacAddress(a1),
            transmitter=MacAddress(a2),
            destination=MacAddress(a3),
            seq=SequenceControl.from_int(seq_val),
            tid=qos & 0xF,
            payload=data[cls.HEADER_BYTES : -cls.FCS_BYTES],
            frame_control=fc,
        )


def null_qos_mpdu(
    receiver: MacAddress,
    transmitter: MacAddress,
    sequence: int,
    *,
    tid: int = 0,
    payload: bytes = b"",
) -> QosDataFrame:
    """Convenience constructor for WiTAG-style minimal query MPDUs.

    Query subframes carry no useful data (paper §4.1): a bare QoS header
    keeps each subframe — and therefore each tag bit — as short as
    possible.  A small ``payload`` is used only for trigger subframes
    (paper §7), which carry the known detection pattern.
    """
    return QosDataFrame(
        receiver=receiver,
        transmitter=transmitter,
        destination=receiver,
        seq=SequenceControl(sequence),
        tid=tid,
        payload=payload,
    )
