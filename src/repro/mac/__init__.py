"""802.11 MAC-layer substrate: frames, aggregation, block ACK, DCF, crypto.

The MAC features modelled here are exactly the ones WiTAG rides on:
A-MPDU aggregation (one PHY header, many MPDUs), per-MPDU FCS checking,
and the block-ACK bitmap through which subframe fates — and therefore tag
bits — travel back to the client.
"""

from .addresses import MacAddress
from .ampdu import (
    DELIMITER_BYTES,
    Subframe,
    aggregate,
    corrupt_range,
    deaggregate,
    decode_delimiter,
    encode_delimiter,
    subframe_lengths,
)
from .block_ack import (
    BLOCK_ACK_WINDOW,
    BlockAck,
    BlockAckRequest,
    BlockAckScoreboard,
    build_block_ack,
)
from .crc import crc8, crc32, fcs_bytes, verify_fcs
from .csma import ContentionModel, DcfParameters, DcfStation
from .duration import Nav, duration_field_us, query_duration_us
from .management import (
    AssociationRequest,
    AssociationResponse,
    Beacon,
    InformationElement,
    associate,
)
from .frames import (
    FrameControl,
    FrameType,
    QosDataFrame,
    SequenceControl,
    null_qos_mpdu,
)
from .sequence import SequenceCounter, TransmitWindow

__all__ = [
    "AssociationRequest",
    "AssociationResponse",
    "Beacon",
    "InformationElement",
    "associate",
    "BLOCK_ACK_WINDOW",
    "BlockAck",
    "BlockAckRequest",
    "BlockAckScoreboard",
    "ContentionModel",
    "DELIMITER_BYTES",
    "DcfParameters",
    "DcfStation",
    "FrameControl",
    "FrameType",
    "MacAddress",
    "Nav",
    "QosDataFrame",
    "SequenceControl",
    "SequenceCounter",
    "Subframe",
    "TransmitWindow",
    "aggregate",
    "build_block_ack",
    "corrupt_range",
    "crc32",
    "crc8",
    "deaggregate",
    "duration_field_us",
    "decode_delimiter",
    "encode_delimiter",
    "fcs_bytes",
    "null_qos_mpdu",
    "query_duration_us",
    "subframe_lengths",
    "verify_fcs",
]
