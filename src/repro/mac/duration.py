"""Duration/ID field and NAV (virtual carrier sensing) computation.

Every 802.11 frame announces how long the ongoing exchange will occupy the
medium; third-party stations set their network allocation vector (NAV)
accordingly and stay silent.  WiTAG's query exchanges are fully standard
— the A-MPDU's duration covers SIFS + block ACK — which is *why* they
coexist cleanly with other traffic (the non-interference requirement's
primary-channel half; the secondary-channel half is in
``repro.baselines.interference``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The Duration/ID field is 15 bits of microseconds (bit 15 = ID marker).
MAX_DURATION_US = 0x7FFF


def duration_field_us(remaining_exchange_s: float) -> int:
    """Encode the remaining exchange time as a Duration field value.

    Rounded up to whole microseconds per the standard; clipped at the
    15-bit maximum.

    Raises:
        ValueError: for negative times.
    """
    if remaining_exchange_s < 0:
        raise ValueError(
            f"remaining time must be >= 0, got {remaining_exchange_s}"
        )
    return min(MAX_DURATION_US, math.ceil(remaining_exchange_s * 1e6))


def query_duration_us(sifs_s: float, block_ack_airtime_s: float) -> int:
    """Duration value for a WiTAG query A-MPDU.

    Covers the SIFS and the expected block ACK, protecting the response
    from third-party transmissions.
    """
    return duration_field_us(sifs_s + block_ack_airtime_s)


@dataclass
class Nav:
    """A station's network allocation vector.

    Tracks the latest time until which the medium is virtually busy.
    """

    busy_until_s: float = 0.0

    def observe(self, now_s: float, duration_us: int) -> None:
        """Process an overheard frame's Duration field at time ``now_s``."""
        if duration_us < 0 or duration_us > MAX_DURATION_US:
            raise ValueError(f"invalid duration field {duration_us}")
        candidate = now_s + duration_us * 1e-6
        if candidate > self.busy_until_s:
            self.busy_until_s = candidate

    def idle_at(self, now_s: float) -> bool:
        """Whether virtual carrier sensing reports the medium idle."""
        return now_s >= self.busy_until_s

    def remaining_s(self, now_s: float) -> float:
        """Seconds of NAV protection left (0 when idle)."""
        return max(0.0, self.busy_until_s - now_s)
