"""Block acknowledgment: bitmap, scoreboard, and control-frame formats.

The block ACK *is* WiTAG's downlink: the AP's 64-bit bitmap reporting which
subframes of the last A-MPDU decoded correctly is, bit for bit, the data
the tag transmitted (paper §4, Figure 2).  The client application simply
reads tag bits out of the bitmap.

This module implements the compressed block ACK of 802.11n/ac: a 12-bit
starting sequence number (SSN) plus a 64-bit bitmap where bit ``k`` reports
MPDU ``(ssn + k) mod 4096``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .addresses import MacAddress
from .crc import fcs_bytes, verify_fcs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

#: Bitmap width of a compressed block ACK.
BLOCK_ACK_WINDOW = 64

#: Sequence-number space size.
SEQUENCE_MODULUS = 4096


def seq_offset(ssn: int, sequence: int) -> int:
    """Offset of ``sequence`` from ``ssn`` in modulo-4096 space."""
    return (sequence - ssn) % SEQUENCE_MODULUS


@dataclass
class BlockAckScoreboard:
    """Receiver-side record of which MPDUs arrived intact.

    Mirrors the scoreboard context of a real 802.11 recipient: a 64-entry
    window anchored at a starting sequence number.  The AP in WiTAG is a
    completely standard recipient — it has no idea a tag exists — so this
    class contains no tag-specific logic whatsoever.
    """

    ssn: int = 0
    _received: set[int] = field(default_factory=set)
    # Private on purpose: the scoreboard's public surface must stay
    # exactly that of a standard recipient (asserted structurally in
    # tests/test_integration_end_to_end.py).
    _telemetry: "Telemetry | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0 <= self.ssn < SEQUENCE_MODULUS:
            raise ValueError(f"SSN must be 0-4095, got {self.ssn}")

    def record(self, sequence: int) -> None:
        """Mark the MPDU with ``sequence`` as successfully received.

        MPDUs outside the 64-frame window are ignored (standard behaviour
        for stale or too-new sequence numbers in a fixed-window model).
        """
        if not 0 <= sequence < SEQUENCE_MODULUS:
            raise ValueError(f"sequence must be 0-4095, got {sequence}")
        if seq_offset(self.ssn, sequence) < BLOCK_ACK_WINDOW:
            self._received.add(sequence)
            if self._telemetry is not None:
                self._telemetry.on_scoreboard_record()

    def bitmap(self) -> int:
        """The 64-bit bitmap: bit k set iff MPDU ssn+k was received."""
        value = 0
        for sequence in self._received:
            value |= 1 << seq_offset(self.ssn, sequence)
        return value

    def reset(self, ssn: int) -> None:
        """Re-anchor the window (on receiving a new BAR / A-MPDU)."""
        if not 0 <= ssn < SEQUENCE_MODULUS:
            raise ValueError(f"SSN must be 0-4095, got {ssn}")
        self.ssn = ssn
        self._received.clear()
        if self._telemetry is not None:
            self._telemetry.on_scoreboard_reset()


@dataclass(frozen=True)
class BlockAck:
    """A compressed block ACK frame.

    Attributes:
        receiver: addressee (the original A-MPDU transmitter).
        transmitter: the acknowledging station (the AP).
        ssn: starting sequence number of the bitmap window.
        bitmap: 64-bit reception bitmap.
        tid: traffic identifier of the block-ACK agreement.
    """

    receiver: MacAddress
    transmitter: MacAddress
    ssn: int
    bitmap: int
    tid: int = 0

    #: FC(2) dur(2) RA(6) TA(6) control(2) SSN(2) bitmap(8) FCS(4)
    FRAME_BYTES = 32

    def __post_init__(self) -> None:
        if not 0 <= self.ssn < SEQUENCE_MODULUS:
            raise ValueError(f"SSN must be 0-4095, got {self.ssn}")
        if not 0 <= self.bitmap < (1 << BLOCK_ACK_WINDOW):
            raise ValueError("bitmap must fit in 64 bits")
        if not 0 <= self.tid <= 15:
            raise ValueError(f"TID must be 0-15, got {self.tid}")

    def bit(self, offset: int) -> bool:
        """Reception status of the MPDU at ``ssn + offset``."""
        if not 0 <= offset < BLOCK_ACK_WINDOW:
            raise ValueError(
                f"offset must be 0-{BLOCK_ACK_WINDOW - 1}, got {offset}"
            )
        return bool(self.bitmap & (1 << offset))

    def bits(self, count: int) -> list[bool]:
        """The first ``count`` bitmap positions as booleans."""
        if not 0 <= count <= BLOCK_ACK_WINDOW:
            raise ValueError(f"count must be 0-64, got {count}")
        return [self.bit(i) for i in range(count)]

    def serialize(self, duration_us: int = 0) -> bytes:
        """Serialize to wire format (compressed BA variant), with FCS."""
        # Frame control: type=control(1), subtype=9 (block ack).
        fc = (1 << 2) | (9 << 4)
        ba_control = 0x0004 | (self.tid << 12)  # compressed bitmap bit
        body = struct.pack(
            "<HH6s6sHHQ",
            fc,
            duration_us,
            bytes(self.receiver),
            bytes(self.transmitter),
            ba_control,
            (self.ssn << 4) & 0xFFFF,
            self.bitmap,
        )
        return body + fcs_bytes(body)

    @classmethod
    def parse(cls, data: bytes) -> "BlockAck":
        """Parse a serialized compressed block ACK, verifying FCS."""
        if len(data) != cls.FRAME_BYTES:
            raise ValueError(
                f"block ACK must be {cls.FRAME_BYTES} bytes, got {len(data)}"
            )
        if not verify_fcs(data):
            raise ValueError("FCS check failed")
        fc, _dur, ra, ta, control, ssn_field, bitmap = struct.unpack(
            "<HH6s6sHHQ", data[:-4]
        )
        if (fc >> 2) & 0x3 != 1 or (fc >> 4) & 0xF != 9:
            raise ValueError("not a block ACK frame")
        return cls(
            receiver=MacAddress(ra),
            transmitter=MacAddress(ta),
            ssn=(ssn_field >> 4) & 0xFFF,
            bitmap=bitmap,
            tid=(control >> 12) & 0xF,
        )


@dataclass(frozen=True)
class BlockAckRequest:
    """A block ACK request (BAR) control frame."""

    receiver: MacAddress
    transmitter: MacAddress
    ssn: int
    tid: int = 0

    #: FC(2) dur(2) RA(6) TA(6) control(2) SSN(2) FCS(4)
    FRAME_BYTES = 24

    def __post_init__(self) -> None:
        if not 0 <= self.ssn < SEQUENCE_MODULUS:
            raise ValueError(f"SSN must be 0-4095, got {self.ssn}")

    def serialize(self, duration_us: int = 0) -> bytes:
        """Serialize to wire format with FCS."""
        fc = (1 << 2) | (8 << 4)  # control / BAR
        body = struct.pack(
            "<HH6s6sHH",
            fc,
            duration_us,
            bytes(self.receiver),
            bytes(self.transmitter),
            0x0004 | (self.tid << 12),
            (self.ssn << 4) & 0xFFFF,
        )
        return body + fcs_bytes(body)


def build_block_ack(
    scoreboard: BlockAckScoreboard,
    receiver: MacAddress,
    transmitter: MacAddress,
    tid: int = 0,
) -> BlockAck:
    """Produce the block ACK a recipient would transmit for its scoreboard."""
    return BlockAck(
        receiver=receiver,
        transmitter=transmitter,
        ssn=scoreboard.ssn,
        bitmap=scoreboard.bitmap(),
        tid=tid,
    )
