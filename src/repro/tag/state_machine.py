"""The tag's control finite-state machine.

Ties together the front end (envelope detector + comparator), the timing
model (oscillator drift) and the antenna design (reflection states) into
the behavioural loop of a WiTAG tag:

    IDLE -> (energy above sensitivity) -> DETECTING
    DETECTING -> (trigger pattern matched) -> SYNCED
    SYNCED: toggle the antenna per scheduled bit at each subframe boundary
    SYNCED -> (A-MPDU ends) -> IDLE

The FSM's product for each observed query is a :class:`TagTransmission`:
the reflection state the antenna actually held during each subframe,
including the consequences of missed triggers and timing slips.  The
end-to-end system feeds these states into the PHY error model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

from ..phy.channel import TagState
from ..seeding import component_rng
from .antenna import TagDesign, phase_flip_design
from .envelope_detector import TriggerDetector
from .oscillator import Oscillator, witag_crystal_50khz
from .timing import TimingModel


class TagPhase(enum.Enum):
    """FSM phases."""

    IDLE = "idle"
    DETECTING = "detecting"
    SYNCED = "synced"


@dataclass(frozen=True)
class QueryObservation:
    """What the tag can observe about an on-air query A-MPDU.

    Attributes:
        n_subframes: total subframes (trigger + payload).
        n_trigger_subframes: leading subframes carrying the trigger pattern.
        subframe_s: true on-air duration of one subframe.
        rx_power_dbm: signal power at the tag's antenna.
        temperature_c: ambient temperature during the query.
    """

    n_subframes: int
    n_trigger_subframes: int
    subframe_s: float
    rx_power_dbm: float
    temperature_c: float = 25.0

    def __post_init__(self) -> None:
        if self.n_subframes < 1:
            raise ValueError("a query needs at least one subframe")
        if not 0 <= self.n_trigger_subframes < self.n_subframes:
            raise ValueError(
                "trigger subframes must leave room for payload subframes"
            )
        if self.subframe_s <= 0:
            raise ValueError("subframe duration must be positive")

    @property
    def n_payload_subframes(self) -> int:
        """Subframes available for tag bits."""
        return self.n_subframes - self.n_trigger_subframes


@dataclass(frozen=True)
class TagTransmission:
    """The tag's actual behaviour during one query.

    Attributes:
        detected: whether the trigger was recognised at all.
        states: antenna state held during each subframe (length
            ``n_subframes``); all-idle if the trigger was missed.
        toggles_aligned: per payload subframe, whether the state toggle
            landed inside its guard window.
        bits_loaded: the data bits the FSM intended to transmit.
    """

    detected: bool
    states: tuple[TagState, ...]
    toggles_aligned: tuple[bool, ...]
    bits_loaded: tuple[int, ...]


@dataclass
class TagStateMachine:
    """Behavioural model of a complete WiTAG tag.

    Attributes:
        design: antenna design (phase-flip by default, per paper §5.2).
        detector: trigger detection front end.
        oscillator: local clock.
        data_queue: bits waiting to be transmitted, consumed FIFO.
        rng: randomness for detection/timing draws.
        telemetry: optional :class:`repro.obs.Telemetry`; counts trigger
            outcomes, consumed bits and toggle alignment.  Both
            :meth:`process_query` and :meth:`process_query_fast` emit
            the same hook values for the same physics.
    """

    design: TagDesign = field(default_factory=phase_flip_design)
    detector: TriggerDetector = field(default_factory=TriggerDetector)
    oscillator: Oscillator = field(default_factory=witag_crystal_50khz)
    data_queue: list[int] = field(default_factory=list)
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("tag")
    )
    phase: TagPhase = TagPhase.IDLE
    telemetry: "Telemetry | None" = field(
        default=None, repr=False, compare=False
    )

    def load_bits(self, bits: list[int]) -> None:
        """Queue data bits for transmission (e.g. a framed sensor reading)."""
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0/1, got {bit}")
        self.data_queue.extend(bits)

    @property
    def pending_bits(self) -> int:
        """Number of bits still queued."""
        return len(self.data_queue)

    def process_query(self, query: QueryObservation) -> TagTransmission:
        """Run the FSM over one query A-MPDU.

        Consumes up to ``query.n_payload_subframes`` queued bits.  If the
        trigger is missed, no bits are consumed and the tag idles through
        the frame (all subframes decode; the reader sees all-ones where it
        expected data and the session layer detects the bad frame).
        """
        idle_state = self.design.state_for_bit_one
        self.phase = TagPhase.DETECTING
        if not self.detector.detect(query.rx_power_dbm, self.rng):
            self.phase = TagPhase.IDLE
            if self.telemetry is not None:
                self.telemetry.on_trigger(False)
            return TagTransmission(
                detected=False,
                states=(idle_state,) * query.n_subframes,
                toggles_aligned=(),
                bits_loaded=(),
            )
        self.phase = TagPhase.SYNCED
        period_estimate = self.detector.subframe_period_estimate_s(
            query.subframe_s, query.rx_power_dbm, self.rng
        )
        timing = TimingModel(
            oscillator=self.oscillator,
            subframe_s=query.subframe_s,
            period_estimate_s=period_estimate,
            temperature_c=query.temperature_c,
        )
        n_bits = min(query.n_payload_subframes, len(self.data_queue))
        bits = tuple(self.data_queue[:n_bits])
        del self.data_queue[:n_bits]

        states: list[TagState] = [idle_state] * query.n_trigger_subframes
        aligned: list[bool] = []
        for k, bit in enumerate(bits):
            ok = timing.aligned(k, self.rng)
            aligned.append(ok)
            states.append(self.design.state_for_bit(bit))
        # Unused payload slots: the tag idles (reads as 1s).
        remaining = query.n_subframes - len(states)
        states.extend([idle_state] * remaining)
        self.phase = TagPhase.IDLE
        if self.telemetry is not None:
            self.telemetry.on_trigger(True)
            self.telemetry.on_tag_bits(n_bits, sum(aligned))
        return TagTransmission(
            detected=True,
            states=tuple(states),
            toggles_aligned=tuple(aligned),
            bits_loaded=bits,
        )

    def process_query_fast(self, query: QueryObservation) -> TagTransmission:
        """:meth:`process_query` with vectorized alignment draws.

        Produces a bitwise-identical :class:`TagTransmission` and leaves
        the generator in the same state: the per-bit scalar
        ``timing.aligned(k, rng)`` draws are replaced by one
        ``rng.normal(mu, sigma)`` array draw (numpy fills array normals
        element-by-element from the same stream), with the ``(mu,
        sigma)`` vectors cached per realised timing model — the grid
        snap means ``cycles_per_subframe`` takes only a handful of
        values per session.  Only the session-batch engine calls this;
        the scalar path stays on :meth:`process_query` so benchmark
        comparisons stay honest.
        """
        idle_state = self.design.state_for_bit_one
        self.phase = TagPhase.DETECTING
        if not self.detector.detect(query.rx_power_dbm, self.rng):
            self.phase = TagPhase.IDLE
            if self.telemetry is not None:
                self.telemetry.on_trigger(False)
            return TagTransmission(
                detected=False,
                states=(idle_state,) * query.n_subframes,
                toggles_aligned=(),
                bits_loaded=(),
            )
        self.phase = TagPhase.SYNCED
        period_estimate = self.detector.subframe_period_estimate_s(
            query.subframe_s, query.rx_power_dbm, self.rng
        )
        timing = TimingModel(
            oscillator=self.oscillator,
            subframe_s=query.subframe_s,
            period_estimate_s=period_estimate,
            temperature_c=query.temperature_c,
        )
        n_bits = min(query.n_payload_subframes, len(self.data_queue))
        bits = tuple(self.data_queue[:n_bits])
        del self.data_queue[:n_bits]

        if n_bits:
            mu, sigma = self._alignment_params(timing, n_bits)
            draws = self.rng.normal(mu, sigma)
            aligned = tuple((np.abs(draws) <= timing.guard_s).tolist())
        else:
            aligned = ()
        by_bit = (self.design.state_for_bit(0), self.design.state_for_bit(1))
        states = [idle_state] * query.n_trigger_subframes
        states.extend([by_bit[bit] for bit in bits])
        states.extend([idle_state] * (query.n_subframes - len(states)))
        self.phase = TagPhase.IDLE
        if self.telemetry is not None:
            self.telemetry.on_trigger(True)
            self.telemetry.on_tag_bits(n_bits, sum(aligned))
        return TagTransmission(
            detected=True,
            states=tuple(states),
            toggles_aligned=aligned,
            bits_loaded=bits,
        )

    def _alignment_params(
        self, timing: TimingModel, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``TimingModel.misalignment_params`` vectors.

        Keyed by everything the scalar per-subframe math depends on, so
        a cache hit is guaranteed bitwise-identical to recomputing.
        """
        key = (
            timing.cycles_per_subframe,
            timing.realized_period_s,
            timing.subframe_s,
            timing.guard_s,
            timing.sync_jitter_s,
            self.oscillator.cycle_jitter_s,
        )
        cache = getattr(self, "_align_cache", None)
        if cache is None:
            cache = self._align_cache = {}
        entry = cache.get(key)
        if entry is None or entry[0].size < count:
            entry = cache[key] = timing.misalignment_params(count)
        return entry[0][:count], entry[1][:count]
