"""Tag antenna designs: open/short switching vs always-reflect phase flip.

Paper §5 describes two tag designs:

* **Open/short** (§5.1): the antenna toggles between non-reflective (open
  circuit) and reflective (short circuit).  The channel change between the
  two states has magnitude ``|Gamma_short - Gamma_open| ~= 1`` times the
  reflected-path gain.
* **Phase flip** (§5.2): the antenna *always* reflects, but the reflection
  phase switches between 0 and 180 degrees via two short-circuited cables
  differing by a quarter wavelength.  The channel change magnitude becomes
  ``|Gamma_0 - Gamma_180| = 2`` — twice as large (+6 dB in perturbation
  power), which is the entire point of Figure 3.

This module expresses both designs in terms of the switch/load models and
maps their electrical states onto :class:`repro.phy.channel.TagState`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phy.channel import TagState
from .rf_switch import ReflectionLoad, RfSwitch, quarter_wave_pair, sky13314


@dataclass(frozen=True)
class TagDesign:
    """A two-state tag antenna design.

    Attributes:
        name: human-readable design label.
        state_for_bit_one: tag state while transmitting a `1` (leave the
            subframe intact) — the state also held through the preamble.
        state_for_bit_zero: tag state while corrupting a subframe.
        switch: the RF switch implementing the toggle.
    """

    name: str
    state_for_bit_one: TagState
    state_for_bit_zero: TagState
    switch: RfSwitch = field(default_factory=sky13314)

    def state_for_bit(self, bit: int) -> TagState:
        """Map a tag data bit to the antenna state that transmits it."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        return self.state_for_bit_one if bit else self.state_for_bit_zero

    @property
    def coefficient_delta(self) -> float:
        """|Gamma(bit0) - Gamma(bit1)|: relative channel-change strength.

        2.0 for the phase-flip design, ~0.9 for open/short (the open state
        retains a small structural reflection), 0 for a degenerate design.
        """
        return abs(
            self.state_for_bit_zero.reflection_coefficient
            - self.state_for_bit_one.reflection_coefficient
        )


def open_short_design(switch: RfSwitch | None = None) -> TagDesign:
    """The basic §5.1 design: absorb for `1`, reflect for `0`."""
    return TagDesign(
        name="open/short",
        state_for_bit_one=TagState.ABSORB,
        state_for_bit_zero=TagState.REFLECT_0,
        switch=switch or sky13314(),
    )


def phase_flip_design(switch: RfSwitch | None = None) -> TagDesign:
    """The improved §5.2 design: always reflect, flip phase to corrupt.

    The preamble (and every `1` bit) is transmitted with the tag in the
    0-degree reflection state; `0` bits flip to 180 degrees, doubling the
    channel change relative to open/short.
    """
    return TagDesign(
        name="phase-flip",
        state_for_bit_one=TagState.REFLECT_0,
        state_for_bit_zero=TagState.REFLECT_180,
        switch=switch or sky13314(),
    )


def phase_flip_loads(
    wavelength_m: float, velocity_factor: float = 0.66
) -> tuple[ReflectionLoad, ReflectionLoad]:
    """The two cable loads realising the phase-flip design in hardware."""
    return quarter_wave_pair(wavelength_m, velocity_factor)
