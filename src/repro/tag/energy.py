"""Tag energy dynamics: harvesting into a storage capacitor, spending on
operation.

Paper §1's low-power requirement exists so tags "can harvest their energy
from the environment and operate without requiring a battery".  The power
budgets (``repro.tag.power``) answer the *average* question; this module
answers the *dynamic* one: given a storage capacitor, an RF harvester and
a query schedule, does the tag's energy stay above its operating floor?
It also yields the minimum query duty cycle that keeps the tag alive for a
given RF illumination — the knob a deployment actually tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harvester import RfHarvester
from .power import PowerBudget, witag_budget


@dataclass(frozen=True)
class StorageCapacitor:
    """The tag's energy reservoir.

    Attributes:
        capacitance_f: storage capacitance (typical tags: 10-100 uF).
        max_voltage_v: charged voltage ceiling.
        min_voltage_v: brown-out floor below which logic stops.
    """

    capacitance_f: float = 47e-6
    max_voltage_v: float = 2.4
    min_voltage_v: float = 1.8

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if not 0 < self.min_voltage_v < self.max_voltage_v:
            raise ValueError("need 0 < min_voltage < max_voltage")

    @property
    def usable_energy_j(self) -> float:
        """Energy between full and brown-out: C/2 (Vmax^2 - Vmin^2)."""
        return (
            0.5
            * self.capacitance_f
            * (self.max_voltage_v**2 - self.min_voltage_v**2)
        )


@dataclass
class EnergySimulator:
    """Steps a tag's stored energy through alternating query/idle phases.

    During a query burst the harvester sees the full excitation power and
    the tag spends its active budget; between bursts only sleep current
    flows and harvesting stops (ambient-only deployments can model a
    nonzero idle input instead).

    Attributes:
        budget: active power budget.
        harvester: RF-to-DC converter.
        capacitor: energy store.
        sleep_power_uw: quiescent draw between queries.
        idle_rf_dbm: RF input between queries (None = no ambient RF).
    """

    budget: PowerBudget = field(default_factory=witag_budget)
    harvester: RfHarvester = field(default_factory=RfHarvester)
    capacitor: StorageCapacitor = field(default_factory=StorageCapacitor)
    sleep_power_uw: float = 0.3
    idle_rf_dbm: float | None = None

    def __post_init__(self) -> None:
        if self.sleep_power_uw < 0:
            raise ValueError("sleep power cannot be negative")
        self._energy_j = self.capacitor.usable_energy_j
        self._consumed_j = 0.0
        self._harvested_j = 0.0
        self._active_s = 0.0
        self._slept_s = 0.0

    @property
    def energy_j(self) -> float:
        """Usable energy currently stored (0 = brown-out)."""
        return self._energy_j

    @property
    def consumed_j(self) -> float:
        """Cumulative energy drawn by the tag (active + sleep).

        The numerator of energy-per-delivered-bit comparisons: unlike
        :attr:`energy_j` it is monotone and unaffected by the
        capacitor's charge ceiling, so two schedules can be compared
        on spend even when both stay fully charged.
        """
        return self._consumed_j

    @property
    def harvested_j(self) -> float:
        """Cumulative energy harvested from RF input."""
        return self._harvested_j

    @property
    def active_s(self) -> float:
        """Cumulative time spent in the active (full-budget) state."""
        return self._active_s

    @property
    def slept_s(self) -> float:
        """Cumulative time spent asleep."""
        return self._slept_s

    @property
    def alive(self) -> bool:
        """Whether the tag is above its brown-out floor."""
        return self._energy_j > 0.0

    def step(self, dt_s: float, *, active: bool, rf_dbm: float | None) -> float:
        """Advance ``dt_s`` seconds; returns the energy after the step.

        Args:
            active: whether the tag is detecting/modulating (full budget)
                or sleeping.
            rf_dbm: RF input power during the step (None = none).
        """
        if dt_s < 0:
            raise ValueError("dt must be >= 0")
        draw_w = (
            self.budget.total_uw if active else self.sleep_power_uw
        ) * 1e-6
        harvest_w = 0.0
        if rf_dbm is not None:
            harvest_w = self.harvester.harvested_uw(rf_dbm) * 1e-6
        self._consumed_j += draw_w * dt_s
        self._harvested_j += harvest_w * dt_s
        if active:
            self._active_s += dt_s
        else:
            self._slept_s += dt_s
        delta = (harvest_w - draw_w) * dt_s
        self._energy_j = min(
            self.capacitor.usable_energy_j, max(0.0, self._energy_j + delta)
        )
        return self._energy_j

    def run_schedule(
        self,
        *,
        query_rf_dbm: float,
        query_burst_s: float,
        idle_gap_s: float,
        n_cycles: int,
    ) -> bool:
        """Simulate a periodic query schedule; True if the tag never dies.

        Raises:
            ValueError: for non-positive schedule parameters.
        """
        if query_burst_s <= 0 or idle_gap_s < 0 or n_cycles < 1:
            raise ValueError("invalid schedule parameters")
        for _ in range(n_cycles):
            self.step(query_burst_s, active=True, rf_dbm=query_rf_dbm)
            if not self.alive:
                return False
            self.step(idle_gap_s, active=False, rf_dbm=self.idle_rf_dbm)
            if not self.alive:
                return False
        return True

    def min_sustainable_duty_cycle(self, query_rf_dbm: float) -> float | None:
        """Smallest query duty cycle with non-negative mean energy flow.

        Harvesting happens *during* queries (the excitation is the power
        source), so more illumination helps; the constraint is that the
        harvest surplus accumulated while active must cover the sleep
        drain between queries: ``d (harvest - active) >= (1 - d) sleep``
        gives ``d >= sleep / (harvest - active + sleep)``.

        Returns:
            The minimum duty cycle in (0, 1], or ``None`` when even
            continuous illumination cannot cover the active budget.
        """
        harvest_uw = self.harvester.harvested_uw(query_rf_dbm)
        surplus = harvest_uw - self.budget.total_uw
        if surplus <= 0:
            return None
        return self.sleep_power_uw / (surplus + self.sleep_power_uw)
