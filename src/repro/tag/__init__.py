"""Backscatter tag hardware models.

Everything the paper's prototype tag is built from — SPDT RF switch,
antenna reflection modes, oscillator, envelope detector, comparator —
modelled at the level of detail the system experiments need, plus the
control FSM, power budgets and an RF harvesting model.
"""

from .antenna import TagDesign, open_short_design, phase_flip_design, phase_flip_loads
from .energy import EnergySimulator, StorageCapacitor
from .envelope_detector import Comparator, EnvelopeDetector, TriggerDetector
from .harvester import RfHarvester
from .oscillator import (
    Oscillator,
    OscillatorKind,
    power_vs_frequency_uw,
    precision_oscillator_20mhz,
    ring_oscillator_20mhz,
    witag_crystal_50khz,
)
from .power import (
    PowerBudget,
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    tag_budget,
    witag_budget,
)
from .rf_switch import ReflectionLoad, RfSwitch, quarter_wave_pair, sky13314
from .state_machine import (
    QueryObservation,
    TagPhase,
    TagStateMachine,
    TagTransmission,
)
from .timing import TimingModel

__all__ = [
    "Comparator",
    "EnergySimulator",
    "EnvelopeDetector",
    "Oscillator",
    "OscillatorKind",
    "PowerBudget",
    "QueryObservation",
    "ReflectionLoad",
    "RfHarvester",
    "RfSwitch",
    "StorageCapacitor",
    "TagDesign",
    "TagPhase",
    "TagStateMachine",
    "TagTransmission",
    "TimingModel",
    "TriggerDetector",
    "channel_shift_precision_budget",
    "channel_shift_ring_budget",
    "open_short_design",
    "phase_flip_design",
    "phase_flip_loads",
    "power_vs_frequency_uw",
    "precision_oscillator_20mhz",
    "quarter_wave_pair",
    "ring_oscillator_20mhz",
    "sky13314",
    "tag_budget",
    "witag_budget",
    "witag_crystal_50khz",
]
