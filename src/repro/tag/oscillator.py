"""Oscillator models: power consumption, accuracy and temperature drift.

Paper §7 argues that the dominant power cost in a backscatter tag is clock
generation, and that WiTAG's key power advantage is needing only a ~50 kHz
clock (subframe-rate timing) instead of the >= 20 MHz required by systems
that shift their reflection to an adjacent channel:

* oscillator power grows roughly with the square of frequency;
* precision MHz-range oscillators burn > 1 mW — incompatible with
  harvesting — so prior systems fall back to ring oscillators;
* ring oscillators drift strongly with temperature (the paper's footnote 4:
  a 5 degC change shifts a 20 MHz ring oscillator by ~600 kHz), breaking
  channel-shifting tags outside temperature-stable environments;
* a 50 kHz crystal is accurate, temperature-stable and draws microwatts.

This module provides a parametric oscillator model plus factory functions
for the specific design points the paper compares, and is the basis of the
E5 power/drift benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OscillatorKind(enum.Enum):
    """Technology class of an oscillator."""

    CRYSTAL = "crystal"
    RING = "ring"
    PRECISION = "precision-mhz"


@dataclass(frozen=True)
class Oscillator:
    """A clock source with power and stability characteristics.

    Attributes:
        kind: technology class.
        nominal_hz: design frequency at the reference temperature.
        power_coeff_uw_per_hz2: power model coefficient ``c`` in
            ``P [uW] = c * f^2`` (paper §7: consumption proportional to the
            square of the clock frequency).
        base_power_uw: frequency-independent floor (bias, buffers).
        temp_drift_ppm_per_c: frequency drift per degree Celsius.
        reference_temp_c: temperature at which ``nominal_hz`` holds.
        cycle_jitter_s: RMS cycle-to-cycle edge jitter.
    """

    kind: OscillatorKind
    nominal_hz: float
    power_coeff_uw_per_hz2: float
    base_power_uw: float = 0.0
    temp_drift_ppm_per_c: float = 0.0
    reference_temp_c: float = 25.0
    cycle_jitter_s: float = 2e-9

    def __post_init__(self) -> None:
        if self.nominal_hz <= 0:
            raise ValueError(f"frequency must be > 0, got {self.nominal_hz}")
        if self.power_coeff_uw_per_hz2 < 0 or self.base_power_uw < 0:
            raise ValueError("power parameters cannot be negative")

    @property
    def power_uw(self) -> float:
        """DC power draw in microwatts at the nominal frequency."""
        return (
            self.base_power_uw
            + self.power_coeff_uw_per_hz2 * self.nominal_hz**2
        )

    def frequency_at(self, temperature_c: float) -> float:
        """Actual output frequency at an ambient temperature."""
        delta_c = temperature_c - self.reference_temp_c
        drift = self.temp_drift_ppm_per_c * 1e-6 * delta_c
        return self.nominal_hz * (1.0 + drift)

    def frequency_error_ppm(self, temperature_c: float) -> float:
        """Relative frequency error (ppm) at a temperature."""
        return (
            (self.frequency_at(temperature_c) - self.nominal_hz)
            / self.nominal_hz
            * 1e6
        )

    def timing_drift_s(self, interval_s: float, temperature_c: float) -> float:
        """Accumulated timing error over ``interval_s`` of free-running.

        This is what limits how many subframes a tag can stay aligned to
        after synchronising on the trigger pattern.
        """
        if interval_s < 0:
            raise ValueError("interval must be >= 0")
        return interval_s * self.frequency_error_ppm(temperature_c) * 1e-6


def witag_crystal_50khz() -> Oscillator:
    """WiTAG's clock: 50 kHz tuning-fork crystal (paper §7).

    Highly accurate (+-20 ppm over temperature via ~0.4 ppm/degC around
    room temperature for a 32-50 kHz tuning fork), drawing ~2 uW.
    """
    return Oscillator(
        kind=OscillatorKind.CRYSTAL,
        nominal_hz=50e3,
        power_coeff_uw_per_hz2=6e-10,  # ~1.5 uW at 50 kHz
        base_power_uw=0.5,
        temp_drift_ppm_per_c=0.4,
        cycle_jitter_s=2e-9,
    )


def ring_oscillator_20mhz() -> Oscillator:
    """The ring oscillator prior systems use to reach 20 MHz cheaply.

    Tens of microwatts, but drifts ~6000 ppm per 5 degC — the paper's
    footnote 4 figure of 600 kHz per 5 degC at 20 MHz.
    """
    return Oscillator(
        kind=OscillatorKind.RING,
        nominal_hz=20e6,
        power_coeff_uw_per_hz2=1e-13,  # ~40 uW at 20 MHz
        base_power_uw=1.0,
        temp_drift_ppm_per_c=6000.0,  # 600 kHz drift per 5 degC at 20 MHz
        cycle_jitter_s=50e-12,
    )


def precision_oscillator_20mhz() -> Oscillator:
    """A precision 20 MHz oscillator: stable but > 1 mW (paper §7)."""
    return Oscillator(
        kind=OscillatorKind.PRECISION,
        nominal_hz=20e6,
        power_coeff_uw_per_hz2=3e-12,  # ~1.2 mW at 20 MHz
        base_power_uw=50.0,
        temp_drift_ppm_per_c=1.0,
    )


def power_vs_frequency_uw(
    frequency_hz: float, *, coeff: float = 3e-12, base_uw: float = 0.5
) -> float:
    """Generic ``P = base + c f^2`` curve for the E5 frequency sweep."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return base_uw + coeff * frequency_hz**2
