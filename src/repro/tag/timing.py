"""Subframe timing recovery and drift accounting.

After detecting the trigger pattern, the tag free-runs on its local clock,
toggling its reflection at what it believes are subframe boundaries.  The
tag counts clock cycles: with a 50 kHz clock and 20 us subframes, one
subframe is exactly one clock period — the reason the paper picks ~50 kHz
as WiTAG's clock rate (§7).  Error sources:

* **count rounding** — the tag can only realise toggle periods that are an
  integer number of clock cycles, so a subframe duration that is not a
  multiple of the clock period leaves a systematic residue that accumulates
  linearly with the subframe index (the query builder therefore pads
  subframes to a clock-period multiple; see ``repro.core.query``);
* **period-estimate error** — the trigger detector measures the subframe
  period imperfectly (envelope-edge jitter);
* **frequency drift** — ppm-scale for a crystal, thousands of ppm for a
  hot ring oscillator, growing linearly with elapsed time; and
* **random jitter** — trigger-edge sync jitter plus accumulated
  cycle-to-cycle oscillator jitter.

A toggle that lands outside its guard window corrupts a neighbouring
subframe instead of (or in addition to) its target; this is the timing
component of the BER floor visible at the easy tag positions in paper
Figure 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..phy.modulation import q_function
from .oscillator import Oscillator


@dataclass(frozen=True)
class TimingModel:
    """Per-subframe toggle alignment model for one query A-MPDU.

    Attributes:
        oscillator: the tag's clock source.
        subframe_s: true subframe duration.
        period_estimate_s: the tag's measured subframe period (from the
            trigger detector); defaults to perfect (``subframe_s``).
        temperature_c: ambient temperature (drives oscillator drift).
        guard_s: tolerable misalignment before a toggle spills into the
            wrong subframe (about half an OFDM symbol by default).
        sync_jitter_s: RMS error of the initial trigger-edge alignment.
        grid_s: known quantum of subframe durations.  Subframes occupy a
            whole number of OFDM symbols (4 us with the long guard
            interval), and the tag knows this by design — the trigger
            measurement only needs to pick *which* multiple, so the noisy
            period estimate is snapped to this grid (paper §7: the trigger
            lets the tag "determine the subframe length since it varies
            from one A-MPDU to another, depending on the physical
            transmission rate").  Set to ``None`` to model a naive tag
            that free-runs on its raw estimate.
    """

    oscillator: Oscillator
    subframe_s: float
    period_estimate_s: float | None = None
    temperature_c: float = 25.0
    guard_s: float = 2.0e-6
    sync_jitter_s: float = 0.7e-6
    grid_s: float | None = 4.0e-6

    def __post_init__(self) -> None:
        if self.subframe_s <= 0:
            raise ValueError("subframe duration must be positive")
        if self.guard_s <= 0:
            raise ValueError("guard must be positive")
        if self.sync_jitter_s < 0:
            raise ValueError("sync jitter cannot be negative")

    @property
    def clock_period_s(self) -> float:
        """One period of the tag clock at the current temperature."""
        return 1.0 / self.oscillator.frequency_at(self.temperature_c)

    @property
    def target_period_s(self) -> float:
        """The period the tag believes subframes have, after grid snap."""
        target = (
            self.subframe_s
            if self.period_estimate_s is None
            else self.period_estimate_s
        )
        if self.grid_s is not None and self.grid_s > 0:
            snapped = round(target / self.grid_s) * self.grid_s
            target = max(self.grid_s, snapped)
        return target

    @property
    def cycles_per_subframe(self) -> int:
        """Clock cycles the tag counts per subframe (rounded, >= 1)."""
        return max(1, round(self.target_period_s * self.oscillator.nominal_hz))

    @property
    def realized_period_s(self) -> float:
        """The toggle period the tag actually produces.

        Cycle count is computed against the *nominal* clock rate (that is
        all the tag knows); the physical period reflects the temperature-
        drifted rate.
        """
        return self.cycles_per_subframe * self.clock_period_s

    def mean_misalignment_s(self, subframe_index: int) -> float:
        """Deterministic misalignment of the toggle before subframe ``k``.

        The accumulated difference between the tag's realised period and
        the true subframe duration.
        """
        if subframe_index < 0:
            raise ValueError("subframe index must be >= 0")
        return subframe_index * (self.realized_period_s - self.subframe_s)

    def jitter_sigma_s(self, subframe_index: int) -> float:
        """RMS random misalignment at subframe ``k``.

        Sync jitter plus root-sum of accumulated cycle jitter.
        """
        cycles = self.cycles_per_subframe * max(subframe_index, 0)
        accumulated = self.oscillator.cycle_jitter_s * math.sqrt(cycles)
        return math.hypot(self.sync_jitter_s, accumulated)

    def misalignment_probability(self, subframe_index: int) -> float:
        """P(toggle misses its guard window) for subframe ``k``."""
        mu = self.mean_misalignment_s(subframe_index)
        sigma = self.jitter_sigma_s(subframe_index)
        if sigma <= 0:
            return 0.0 if abs(mu) <= self.guard_s else 1.0
        upper = (self.guard_s - mu) / sigma
        lower = (-self.guard_s - mu) / sigma
        return q_function(upper) + (1.0 - q_function(lower))

    def misalignment_params(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mu, sigma)`` vectors for subframes ``0..count-1``.

        Each element is computed through the scalar
        :meth:`mean_misalignment_s` / :meth:`jitter_sigma_s` methods
        (``math.hypot`` per element, not ``np.hypot``), so drawing
        ``rng.normal(mu, sigma)`` once reproduces the per-subframe
        scalar draws of :meth:`aligned` bitwise.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        mu = np.array(
            [self.mean_misalignment_s(k) for k in range(count)], dtype=float
        )
        sigma = np.array(
            [self.jitter_sigma_s(k) for k in range(count)], dtype=float
        )
        return mu, sigma

    def sample_misalignment_s(
        self, subframe_index: int, rng: np.random.Generator
    ) -> float:
        """Draw one toggle misalignment for subframe ``k``."""
        return float(
            rng.normal(
                self.mean_misalignment_s(subframe_index),
                self.jitter_sigma_s(subframe_index),
            )
        )

    def aligned(self, subframe_index: int, rng: np.random.Generator) -> bool:
        """Draw whether the toggle for subframe ``k`` stays in its window."""
        return (
            abs(self.sample_misalignment_s(subframe_index, rng))
            <= self.guard_s
        )

    def max_reliable_subframes(self, *, target_error: float = 0.01) -> int:
        """How many subframes the tag stays aligned for.

        Returns the largest index k (capped at 4096) whose misalignment
        probability is below ``target_error`` — a design helper for
        choosing A-MPDU sizes and re-sync cadence.
        """
        if not 0 < target_error < 1:
            raise ValueError("target_error must be in (0, 1)")
        k = 0
        while k < 4096 and self.misalignment_probability(k) < target_error:
            k += 1
        return max(0, k - 1)
