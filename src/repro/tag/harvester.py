"""RF energy harvesting model.

WiTAG's low-power requirement (paper §1) exists so tags can "harvest their
energy from the environment and operate without requiring a battery".
This module models a rectenna harvester with the standard nonlinear
efficiency characteristic: nothing below a sensitivity threshold, rising
efficiency with input power, saturating for strong inputs — enough to
answer the system question *can the ambient WiFi that queries the tag also
power it?* (exercised by ``examples/power_budget.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..phy.noise import dbm_to_watts
from .power import PowerBudget


@dataclass(frozen=True)
class RfHarvester:
    """A rectenna RF-to-DC harvester.

    Attributes:
        sensitivity_dbm: minimum input power for any rectified output
            (CMOS rectennas: around -20 dBm; state of the art ~-30 dBm).
        peak_efficiency: best-case conversion efficiency.
        half_efficiency_dbm: input power at which efficiency reaches half
            of peak (logistic knee).
    """

    sensitivity_dbm: float = -22.0
    peak_efficiency: float = 0.35
    half_efficiency_dbm: float = -10.0

    def __post_init__(self) -> None:
        if not 0 < self.peak_efficiency <= 1:
            raise ValueError("peak efficiency must be in (0, 1]")
        if self.half_efficiency_dbm <= self.sensitivity_dbm:
            raise ValueError(
                "efficiency knee must lie above the sensitivity floor"
            )

    def efficiency(self, input_dbm: float) -> float:
        """Conversion efficiency at a given input power."""
        if input_dbm < self.sensitivity_dbm:
            return 0.0
        # Logistic ramp in dB domain, saturating at peak_efficiency.
        steepness = 0.35
        x = steepness * (input_dbm - self.half_efficiency_dbm)
        return self.peak_efficiency / (1.0 + math.exp(-x))

    def harvested_uw(self, input_dbm: float, duty_cycle: float = 1.0) -> float:
        """Average harvested DC power in microwatts.

        Args:
            input_dbm: RF input power while the source transmits.
            duty_cycle: fraction of time RF is present (queries are bursty).
        """
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")
        input_w = dbm_to_watts(input_dbm)
        return self.efficiency(input_dbm) * input_w * 1e6 * duty_cycle

    def sustains(
        self, budget: PowerBudget, input_dbm: float, duty_cycle: float = 1.0
    ) -> bool:
        """Whether harvesting at these conditions covers a power budget."""
        return self.harvested_uw(input_dbm, duty_cycle) >= budget.total_uw

    def min_input_dbm(
        self, budget: PowerBudget, duty_cycle: float = 1.0
    ) -> float | None:
        """Smallest input power (dBm) sustaining ``budget``, or None.

        Scans in 0.1 dB steps up to +10 dBm; None means the budget cannot
        be harvested even at very strong inputs.
        """
        level = self.sensitivity_dbm
        while level <= 10.0:
            if self.sustains(budget, level, duty_cycle):
                return round(level, 1)
            level += 0.1
        return None
