"""RF switch model (Skyworks SKY13314-374LF, the paper's prototype part).

The prototype tag (paper §6.1) is an omnidirectional antenna, an
SKY13314-374LF GaAs SPDT switch and a microcontroller.  The switch toggles
the antenna between two termination loads; in the improved design (§5.2)
both loads are short-circuited cables whose lengths differ by a quarter
wavelength, producing reflection phases of 0 and 180 degrees.

Datasheet-derived parameters (SKY13314-374LF, 0.1-6.0 GHz SPDT):
insertion loss ~0.35 dB at 2.4 GHz, isolation ~25 dB, switching time
~45 ns, negligible DC draw (GaAs pHEMT control currents ~ uA).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RfSwitch:
    """An SPDT RF switch with datasheet-level characteristics.

    Attributes:
        insertion_loss_db: loss through the selected port.
        isolation_db: leakage suppression to the unselected port.
        switching_time_s: time to settle after a control-line toggle.
        control_power_uw: DC power consumed by the control interface.
    """

    insertion_loss_db: float = 0.35
    isolation_db: float = 25.0
    switching_time_s: float = 45e-9
    control_power_uw: float = 0.3

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ValueError("insertion loss cannot be negative")
        if self.switching_time_s <= 0:
            raise ValueError("switching time must be positive")

    @property
    def through_gain(self) -> float:
        """Linear field (amplitude) gain of the selected path."""
        return 10.0 ** (-self.insertion_loss_db / 20.0)

    def settles_within(self, budget_s: float) -> bool:
        """Whether a state change completes inside ``budget_s``.

        WiTAG needs the switch to settle well within one OFDM symbol
        (4 us); with ~45 ns switching this holds by two orders of
        magnitude, which is why the tag can toggle per subframe.
        """
        if budget_s <= 0:
            raise ValueError("budget must be positive")
        return self.switching_time_s <= budget_s


def sky13314() -> RfSwitch:
    """The exact part used by the paper's prototype."""
    return RfSwitch()


@dataclass(frozen=True)
class ReflectionLoad:
    """A termination load attached to one switch port.

    A short circuit reflects with coefficient -1; an open circuit with +1;
    a matched load absorbs (coefficient 0).  A short-circuited *cable* of
    physical length L adds a round-trip phase of ``2 * beta * L`` where
    ``beta = 2 pi / lambda_cable``.

    Attributes:
        base_coefficient: reflection coefficient at the load itself.
        cable_length_m: electrical length of cable before the load.
        velocity_factor: cable propagation velocity relative to c.
    """

    base_coefficient: complex
    cable_length_m: float = 0.0
    velocity_factor: float = 0.66

    def __post_init__(self) -> None:
        if abs(self.base_coefficient) > 1.0 + 1e-9:
            raise ValueError("passive load cannot have |Gamma| > 1")
        if self.cable_length_m < 0:
            raise ValueError("cable length cannot be negative")
        if not 0 < self.velocity_factor <= 1:
            raise ValueError("velocity factor must be in (0, 1]")

    def reflection_coefficient(self, wavelength_m: float) -> complex:
        """Net reflection coefficient seen at the switch port."""
        if wavelength_m <= 0:
            raise ValueError("wavelength must be positive")
        lambda_cable = wavelength_m * self.velocity_factor
        round_trip_phase = 4.0 * math.pi * self.cable_length_m / lambda_cable
        return self.base_coefficient * complex(
            math.cos(round_trip_phase), -math.sin(round_trip_phase)
        )


def quarter_wave_pair(
    wavelength_m: float, velocity_factor: float = 0.66
) -> tuple[ReflectionLoad, ReflectionLoad]:
    """The paper's phase-flip trick (§5.2 footnote 3).

    Two short-circuited cables whose lengths differ by a quarter of the
    (cable) wavelength: the quarter-wave of extra cable adds 180 degrees
    of round-trip phase, so switching between them flips the reflected
    signal's phase while always reflecting at full strength.
    """
    if wavelength_m <= 0:
        raise ValueError("wavelength must be positive")
    lambda_cable = wavelength_m * velocity_factor
    short = ReflectionLoad(
        complex(-1.0, 0.0), cable_length_m=0.0, velocity_factor=velocity_factor
    )
    longer = ReflectionLoad(
        complex(-1.0, 0.0),
        cable_length_m=lambda_cable / 4.0,
        velocity_factor=velocity_factor,
    )
    return short, longer
