"""Envelope detector + comparator front end for query-packet detection.

A WiTAG tag has no WiFi receiver.  To find query packets and measure
subframe timing it uses the scheme of paper §7: the client puts a known
bit pattern in the payload of the first few subframes ("trigger
subframes") chosen so the transmitted waveform alternates between
distinguishable amplitude levels; the tag rectifies the RF envelope with a
passive detector and slices it with a micropower comparator.

The model here captures the two quantities that matter to the system
experiments: (1) whether the query is detected at all (sensitivity-limited)
and (2) how reliably each trigger edge is found (margin-limited, feeding
the timing model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..phy.modulation import q_function


@dataclass(frozen=True)
class EnvelopeDetector:
    """A passive rectifier envelope detector.

    Attributes:
        sensitivity_dbm: minimum input power producing a usable envelope
            (passive Schottky detectors: around -45 to -50 dBm).
        output_noise_mv: RMS noise at the detector output.
        slope_mv_per_db: detector output change per dB of input power in
            the square-law region.
        power_uw: DC power draw (passive detector: ~0, biasing ~0.1 uW).
    """

    sensitivity_dbm: float = -46.0
    output_noise_mv: float = 0.8
    slope_mv_per_db: float = 2.5
    power_uw: float = 0.1

    def __post_init__(self) -> None:
        if self.output_noise_mv <= 0 or self.slope_mv_per_db <= 0:
            raise ValueError("noise and slope must be positive")

    def in_range(self, rx_power_dbm: float) -> bool:
        """Whether the input is above the detector's sensitivity floor."""
        return rx_power_dbm >= self.sensitivity_dbm


@dataclass(frozen=True)
class Comparator:
    """A micropower comparator slicing the envelope into binary levels.

    Attributes:
        input_offset_mv: worst-case input-referred offset.
        power_uw: DC draw (nanopower comparators: ~0.3-0.7 uW).
    """

    input_offset_mv: float = 0.5
    power_uw: float = 0.5


@dataclass(frozen=True)
class TriggerDetector:
    """End-to-end trigger-pattern detection model.

    The client encodes the trigger as amplitude steps of
    ``pattern_contrast_db`` between consecutive trigger subframes.  Each
    edge is detected iff the envelope swing exceeds the comparator noise +
    offset; the whole trigger requires every edge.

    Attributes:
        detector: the envelope detector.
        comparator: the slicer.
        n_trigger_subframes: how many trigger subframes the query carries
            (paper §7: "the first few subframes"; more subframes = more
            robust sync, fewer payload bits).
        pattern_contrast_db: amplitude contrast of the trigger pattern.
    """

    detector: EnvelopeDetector = EnvelopeDetector()
    comparator: Comparator = Comparator()
    n_trigger_subframes: int = 2
    pattern_contrast_db: float = 6.0
    #: Input level at which the detector's nominal slope applies; a
    #: square-law detector's absolute output swing grows with input power
    #: until saturation.
    reference_level_dbm: float = -40.0
    #: Saturation cap on the level-dependent swing gain.
    max_level_gain: float = 30.0

    def __post_init__(self) -> None:
        if self.n_trigger_subframes < 1:
            raise ValueError("need at least one trigger subframe")
        if self.pattern_contrast_db <= 0:
            raise ValueError("pattern contrast must be positive")

    def _level_gain(self, rx_power_dbm: float) -> float:
        """Swing scaling for the square-law region, saturating above."""
        gain = 10.0 ** ((rx_power_dbm - self.reference_level_dbm) / 10.0)
        return min(gain, self.max_level_gain)

    def edge_detection_probability(self, rx_power_dbm: float) -> float:
        """Probability of correctly detecting one trigger edge."""
        if not self.detector.in_range(rx_power_dbm):
            return 0.0
        swing_mv = (
            self.pattern_contrast_db
            * self.detector.slope_mv_per_db
            * self._level_gain(rx_power_dbm)
        )
        margin_mv = swing_mv / 2.0 - self.comparator.input_offset_mv
        if margin_mv <= 0:
            return 0.0
        return 1.0 - q_function(margin_mv / self.detector.output_noise_mv)

    def query_detection_probability(self, rx_power_dbm: float) -> float:
        """Probability that the full trigger pattern is recognised.

        Each trigger subframe contributes one edge; all must be seen.
        """
        p_edge = self.edge_detection_probability(rx_power_dbm)
        return p_edge**self.n_trigger_subframes

    def detect(
        self, rx_power_dbm: float, rng: np.random.Generator
    ) -> bool:
        """Draw one Bernoulli detection outcome."""
        return bool(rng.random() < self.query_detection_probability(rx_power_dbm))

    def subframe_period_estimate_s(
        self,
        true_period_s: float,
        rx_power_dbm: float,
        rng: np.random.Generator,
    ) -> float:
        """Estimate of the subframe period measured from trigger edges.

        Edge-timing error maps comparator noise through the envelope slew;
        modelled as Gaussian jitter of a fraction of an OFDM symbol scaled
        by the inverse detection margin.
        """
        if true_period_s <= 0:
            raise ValueError("period must be positive")
        p_edge = self.edge_detection_probability(rx_power_dbm)
        if p_edge <= 0.0:
            raise ValueError("cannot estimate timing below sensitivity")
        # Edge-timing error: comparator noise divided by envelope slew,
        # improving with signal level and degrading as the edge margin
        # shrinks.
        base_jitter_s = 0.5e-6 / math.sqrt(self._level_gain(rx_power_dbm))
        jitter_s = base_jitter_s / max(p_edge, 1e-3)
        # Averaging over the trigger subframes reduces the error.
        jitter_s /= math.sqrt(self.n_trigger_subframes)
        return true_period_s + float(rng.normal(0.0, jitter_s))
