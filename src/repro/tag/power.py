"""Tag power budgets: WiTAG vs channel-shifting backscatter systems.

Quantifies paper §7's power argument.  A backscatter tag's budget is
dominated by clock generation; WiTAG needs only subframe-rate timing
(50 kHz) while HitchHike/FreeRider/MOXcatter must synthesise a >= 20 MHz
square wave to shift their reflection to a non-overlapping channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .envelope_detector import Comparator, EnvelopeDetector
from .oscillator import (
    Oscillator,
    precision_oscillator_20mhz,
    ring_oscillator_20mhz,
    witag_crystal_50khz,
)
from .rf_switch import RfSwitch, sky13314


@dataclass(frozen=True)
class PowerBudget:
    """An itemised DC power budget in microwatts.

    Attributes:
        name: system label.
        components: component name -> draw in uW.
    """

    name: str
    components: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for component, draw in self.components.items():
            if draw < 0:
                raise ValueError(
                    f"component {component!r} has negative draw {draw}"
                )

    @property
    def total_uw(self) -> float:
        """Total draw in microwatts."""
        return sum(self.components.values())

    @property
    def total_mw(self) -> float:
        """Total draw in milliwatts."""
        return self.total_uw / 1000.0

    @property
    def battery_free_feasible(self) -> bool:
        """Whether ambient RF harvesting can plausibly sustain the budget.

        Indoor RF harvesting delivers on the order of tens of microwatts;
        the paper (citing Zhang et al., SIGCOMM 2016) treats >= 1 mW as
        rendering battery-free operation impractical.  We use a 100 uW
        line: comfortably above WiTAG-class budgets, far below precision-
        oscillator ones.
        """
        return self.total_uw < 100.0


def tag_budget(
    name: str,
    oscillator: Oscillator,
    *,
    switch: RfSwitch | None = None,
    detector: EnvelopeDetector | None = None,
    comparator: Comparator | None = None,
    logic_uw: float = 1.0,
) -> PowerBudget:
    """Assemble a budget from component models."""
    switch = switch or sky13314()
    detector = detector or EnvelopeDetector()
    comparator = comparator or Comparator()
    return PowerBudget(
        name=name,
        components={
            "oscillator": oscillator.power_uw,
            "rf_switch": switch.control_power_uw,
            "envelope_detector": detector.power_uw,
            "comparator": comparator.power_uw,
            "control_logic": logic_uw,
        },
    )


def witag_budget() -> PowerBudget:
    """WiTAG tag: 50 kHz crystal clock (paper §7: a few microwatts)."""
    return tag_budget("WiTAG", witag_crystal_50khz())


def channel_shift_ring_budget(name: str = "channel-shift (ring osc)") -> PowerBudget:
    """HitchHike/FreeRider/MOXcatter-class tag on a 20 MHz ring oscillator.

    Tens of microwatts, battery-free-feasible, but temperature-fragile.
    """
    return tag_budget(name, ring_oscillator_20mhz())


def channel_shift_precision_budget(
    name: str = "channel-shift (precision osc)",
) -> PowerBudget:
    """Channel-shifting tag on a precision 20 MHz oscillator: > 1 mW."""
    return tag_budget(name, precision_oscillator_20mhz())
