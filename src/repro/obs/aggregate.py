"""Deterministic cross-process telemetry aggregation.

Worker chunks ship :meth:`repro.obs.telemetry.Telemetry.chunk_snapshot`
dicts back through the engine's chunk-result channel.  The engine sorts
outcomes by chunk index and folds the snapshots here, so a parallel run
and a serial run of the same spec (same units, same chunk size) expose
identical aggregates: counters and histogram bins are integer/ordered
sums, and per-chunk registries are merged in chunk order.

Stage counters (wall-clock) aggregate the same way but are *not*
deterministic across runs — they answer "where did worker time go?",
not "what happened in the physics?".  Chunk-transport metrics (payload
bytes, encode times) are the same kind of operational signal: they
exist only when chunks actually cross a process boundary, so they live
in their own registry (:meth:`TelemetryAggregate.transport_snapshot`)
and never perturb the deterministic physics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..perf import StageCounters
from .metrics import SNAPSHOT_SCHEMA, MetricsRegistry

__all__ = ["TelemetryAggregate"]


@dataclass
class TelemetryAggregate:
    """Merged telemetry from one or more chunk snapshots."""

    _registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    _stage: dict[str, StageCounters] = field(default_factory=dict)
    _transport: MetricsRegistry = field(default_factory=MetricsRegistry)
    chunks: int = 0
    has_metrics: bool = False
    has_transport: bool = False

    @classmethod
    def from_chunks(
        cls, chunks: Iterable[Mapping[str, Any]]
    ) -> "TelemetryAggregate":
        """Fold chunk snapshots, in the order given (chunk index order)."""
        aggregate = cls()
        for chunk in chunks:
            aggregate.add_chunk(chunk)
        return aggregate

    def add_chunk(self, chunk: Mapping[str, Any]) -> None:
        metrics = chunk.get("metrics")
        if metrics is not None:
            self._registry.load_snapshot(metrics)
            self.has_metrics = True
        for group, stages in chunk.get("stage", {}).items():
            counters = self._stage.setdefault(group, StageCounters())
            for stage, entry in stages.items():
                counters.add(
                    stage, float(entry["seconds"]), int(entry["calls"])
                )
        self.chunks += 1

    def record_retries(self, events: Iterable[Any]) -> None:
        """Fold scheduler fault-tolerance events into the merged metrics.

        ``events`` are :class:`repro.runner.faults.RetryEvent` objects;
        each increments ``runner_chunk_retries_total{reason}``.  Retry
        events are coordinator-side (workers never see them), so the
        engine folds them in here after the chunk snapshots merge.
        """
        counted = False
        for event in events:
            self._registry.counter(
                "runner_chunk_retries_total",
                "Engine chunk fault-tolerance events by failure reason",
                labels=("reason",),
            ).labels(reason=event.reason).inc()
            counted = True
        if counted:
            self.has_metrics = True

    def record_transport(self, events: Iterable[Any]) -> None:
        """Fold chunk-transport events into the *operational* metrics.

        ``events`` are :class:`repro.runner.transport.TransportEvent`
        objects the coordinator collected while decoding chunk
        payloads; each adds its encoded size to
        ``runner_chunk_bytes_total{codec}`` and its encode time to
        ``runner_chunk_encode_seconds``.  These land in a registry of
        their own (:meth:`transport_snapshot`), not the physics
        snapshot: a serial run moves zero payload bytes, so folding
        transport into :meth:`metrics_snapshot` would break the
        serial-equals-parallel aggregate invariant.
        """
        from .telemetry import ENCODE_SECONDS_BUCKETS

        counted = False
        for event in events:
            self._transport.counter(
                "runner_chunk_bytes_total",
                "Encoded chunk payload bytes by transport codec",
                labels=("codec",),
            ).labels(codec=event.codec).inc(event.nbytes)
            self._transport.histogram(
                "runner_chunk_encode_seconds",
                ENCODE_SECONDS_BUCKETS,
                "Per-chunk transport encode wall-clock seconds",
            ).observe(event.encode_s)
            counted = True
        if counted:
            self.has_transport = True

    def transport_snapshot(self) -> dict[str, Any] | None:
        """Chunk-transport metric snapshot, or ``None`` if none flowed."""
        return self._transport.snapshot() if self.has_transport else None

    def metrics_snapshot(self) -> dict[str, Any] | None:
        """Merged metric snapshot, or ``None`` if no chunk had metrics."""
        return self._registry.snapshot() if self.has_metrics else None

    def stage_timings(self) -> dict[str, dict[str, dict[str, float]]]:
        """Merged stage counters, ``{group: {stage: {seconds, calls}}}``."""
        return {
            group: self._stage[group].as_dict()
            for group in sorted(self._stage)
        }

    def stage_counters(self, group: str) -> StageCounters:
        """The merged :class:`StageCounters` for ``group`` (may be empty)."""
        return self._stage.get(group, StageCounters())

    def merge_into(self, session) -> None:
        """Fold merged stage counters back into a caller's live objects.

        ``session`` is a :class:`repro.core.session.MeasurementSession`;
        the "system" and "error_model" groups land on its system's and
        error model's counters, restoring ``stage_timings()`` after a
        parallel run whose workers did the actual timing.
        """
        session.system.counters.merge(self.stage_counters("system"))
        session.system.error_model.counters.merge(
            self.stage_counters("error_model")
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view, stamped with schema and producing version."""
        from .. import __version__

        return {
            "schema": SNAPSHOT_SCHEMA,
            "version": __version__,
            "chunks": self.chunks,
            "metrics": self.metrics_snapshot(),
            "stage": self.stage_timings(),
            "transport": self.transport_snapshot(),
        }
