"""Server-level metrics for the sweep job service.

The job server's registry is intentionally separate from the physics
registries that ride the chunk-result channel: server metrics describe
*scheduling* (queue depth, jobs by state, chunk latency) and are
inherently non-deterministic, while the physics registries keep the
tier-invariance contract.  ``GET /metrics`` renders this registry with
the same :func:`repro.obs.metrics.render_prometheus` exposition the
``repro metrics`` CLI uses, so one scrape config covers both.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry, log_buckets, render_prometheus

__all__ = ["CHUNK_LATENCY_BUCKETS", "ServerMetrics"]

#: Chunk wall-clock latency edges: 100 us .. 100 s, log-spaced.  Wide
#: because one chunk may hold anything from a handful of rng probes to
#: minutes of simulated session time.
CHUNK_LATENCY_BUCKETS = log_buckets(1e-4, 100.0, 13)

#: Every job state a gauge series is pre-created for, so a scrape sees
#: explicit zeros instead of missing series.
_JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")


class ServerMetrics:
    """Counters/gauges/histograms describing one job server's lifetime."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._submitted = self.registry.counter(
            "serve_jobs_submitted_total",
            "Jobs accepted by POST /jobs, by job kind",
            labels=("kind",),
        )
        self._jobs = self.registry.gauge(
            "serve_jobs",
            "Jobs currently known to the store, by state",
            labels=("state",),
            aggregation="sum",
        )
        self._queue_depth = self.registry.gauge(
            "serve_queue_depth",
            "Jobs waiting in the priority queue",
            aggregation="sum",
        )
        self._chunks = self.registry.counter(
            "serve_chunks_completed_total",
            "Engine chunks resolved across all jobs (resumed included)",
            labels=("resumed",),
        )
        self._chunk_latency = self.registry.histogram(
            "serve_chunk_latency_seconds",
            CHUNK_LATENCY_BUCKETS,
            "Wall-clock seconds spent inside one chunk's work functions",
        )
        self._events = self.registry.counter(
            "serve_events_streamed_total",
            "SSE events written to clients",
        )
        for state in _JOB_STATES:
            self._jobs.labels(state=state).set(0)
        self._queue_depth.set(0)

    def job_submitted(self, kind: str) -> None:
        self._submitted.labels(kind=kind).inc()

    def set_job_states(self, counts: dict[str, int]) -> None:
        """Publish the store's jobs-by-state census (absolute values)."""
        for state in _JOB_STATES:
            self._jobs.labels(state=state).set(counts.get(state, 0))

    def set_queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    def chunk_completed(self, busy_s: float, resumed: bool) -> None:
        self._chunks.labels(resumed="true" if resumed else "false").inc()
        self._chunk_latency.observe(float(busy_s))

    def event_streamed(self, n: int = 1) -> None:
        self._events.inc(n)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able registry snapshot (schema-1, mergeable)."""
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())
