"""Trace spans: JSONL query/session records with sampling.

Each record is one JSON object per line (JSONL).  The documented schema
(see ``docs/observability.md``) is versioned through a ``schema`` field
on every record; the current version is :data:`TRACE_SCHEMA`.

Record kinds:

* ``header`` — written once per file: schema version plus the producing
  ``repro`` version, so a trace is self-describing.
* ``query`` — one query cycle: index, SSN, detection, per-subframe
  outcome summary, block-ACK bitmap, digests of the tag-state plan and
  the fading draw, cycle duration.  The scalar and batched execution
  paths emit bitwise-identical ``query`` records for the same seed.
* ``session`` — end-of-run totals (mirrors
  :class:`repro.core.session.SessionStats`) plus cumulative stage
  timings.  Summing the ``query`` records of an unsampled trace
  reproduces the ``session`` record exactly.
* ``retry`` — one engine fault-tolerance decision (see
  :class:`repro.runner.faults.RetryEvent`): which chunk failed, the
  attempt number, the failure reason, and what the scheduler did about
  it (retry, serial fallback, or terminal failure).
* ``transport`` — one chunk payload crossing the process boundary (see
  :class:`repro.runner.transport.TransportEvent`): the codec, encoded
  size, and encode/decode wall-clock.

Sampling (:class:`TraceSampler`) bounds trace cost on long runs:
``every_n`` keeps one query in N, ``head`` always keeps the first few,
and ``tail`` buffers the last few otherwise-dropped records in memory
and flushes them at session end.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "TRACE_SCHEMA",
    "TraceSampler",
    "TraceWriter",
    "fading_digest",
    "fading_rows_digest",
    "read_trace",
    "states_digest",
    "summarize_trace",
    "validate_trace_record",
]

#: Trace record schema version (the ``schema`` field of every record).
TRACE_SCHEMA = 1

_DIGEST_BYTES = 8


def fading_digest(direct_gain: complex, tag_fading: complex) -> str:
    """Short stable digest of one coherence-interval fading draw.

    Packs the four float64 components bit-exactly, so the scalar and
    session-batch engines (whose fading values are bitwise identical)
    produce the same digest.
    """
    payload = struct.pack(
        "<4d",
        direct_gain.real,
        direct_gain.imag,
        tag_fading.real,
        tag_fading.imag,
    )
    return hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).hexdigest()


def fading_rows_digest(
    rows: Iterable[tuple[complex, complex]],
) -> str:
    """Digest of a sequence of ``(direct_gain, tag_fading)`` draws.

    Multi-tag queries sample one coherence-interval fading pair per
    responder; this packs every pair bit-exactly in responder order.
    For a single row it equals :func:`fading_digest` of that pair, so
    fleet ``query`` trace records degrade gracefully to the single-tag
    digest when only one tag responds.
    """
    payload = b"".join(
        struct.pack(
            "<4d",
            direct.real,
            direct.imag,
            tag.real,
            tag.imag,
        )
        for direct, tag in rows
    )
    return hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).hexdigest()


def states_digest(states: Iterable[Any]) -> str:
    """Short stable digest of a per-subframe tag-state plan."""
    text = ",".join(getattr(s, "name", str(s)) for s in states)
    return hashlib.blake2b(
        text.encode("utf-8"), digest_size=_DIGEST_BYTES
    ).hexdigest()


@dataclass(frozen=True)
class TraceSampler:
    """Which query indices to trace.

    Attributes:
        every_n: keep query ``i`` when ``i % every_n == 0``; ``0``
            disables periodic sampling entirely (only head/tail kept).
        head: always keep the first ``head`` queries.
        tail: keep the last ``tail`` otherwise-dropped queries (they are
            buffered and flushed when the session record is emitted).
    """

    every_n: int = 1
    head: int = 0
    tail: int = 0

    def __post_init__(self) -> None:
        if self.every_n < 0 or self.head < 0 or self.tail < 0:
            raise ValueError("sampler knobs must be >= 0")

    def keep(self, index: int) -> bool:
        """Whether query ``index`` is sampled immediately."""
        if index < self.head:
            return True
        return self.every_n > 0 and index % self.every_n == 0


class TraceWriter:
    """Buffered JSONL writer.

    Serialized records accumulate in memory and are flushed every
    ``buffer_records`` writes (and on :meth:`flush`/:meth:`close`), so
    tracing a session-batch run costs one ``json.dumps`` per sampled
    record rather than one syscall per record.  A ``header`` record is
    written when the file is created (or when appending to an empty
    file), stamping the schema version and producing ``repro`` version.
    """

    def __init__(
        self,
        path: str,
        *,
        buffer_records: int = 256,
        append: bool = False,
    ) -> None:
        if buffer_records < 1:
            raise ValueError("buffer_records must be >= 1")
        self.path = path
        self.buffer_records = buffer_records
        self.records_written = 0
        self._buffer: list[str] = []
        self._closed = False
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fresh = not append or not os.path.exists(path) or (
            os.path.getsize(path) == 0
        )
        self._handle = open(
            path, "a" if append else "w", encoding="utf-8"
        )
        if fresh:
            from .. import __version__

            self.write(
                {
                    "schema": TRACE_SCHEMA,
                    "kind": "header",
                    "producer": "repro",
                    "version": __version__,
                }
            )

    def write(self, record: Mapping[str, Any]) -> None:
        """Queue one record (must already carry ``schema`` and ``kind``)."""
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        self.records_written += 1
        if len(self._buffer) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TailBuffer:
    """Ring buffer of the last N dropped records (tail sampling)."""

    def __init__(self, size: int) -> None:
        self._records: deque = deque(maxlen=size) if size > 0 else deque(
            maxlen=0
        )

    def push(self, record: Mapping[str, Any]) -> None:
        if self._records.maxlen:
            self._records.append(record)

    def drain(self) -> list[Mapping[str, Any]]:
        records = list(self._records)
        self._records.clear()
        return records


_QUERY_FIELDS = {
    "schema": int,
    "kind": str,
    "index": int,
    "ssn": int,
    "detected": bool,
    "bits_sent": int,
    "bit_errors": int,
    "subframes": int,
    "subframes_failed": int,
    "bitmap": str,
    "states_digest": str,
    "fading_digest": str,
    "cycle_s": float,
}

_SESSION_FIELDS = {
    "schema": int,
    "kind": str,
    "queries": int,
    "bits_sent": int,
    "bit_errors": int,
    "missed_triggers": int,
    "elapsed_s": float,
    "ber": float,
    "stage_timings": dict,
}

_HEADER_FIELDS = {
    "schema": int,
    "kind": str,
    "producer": str,
    "version": str,
}

_RETRY_FIELDS = {
    "schema": int,
    "kind": str,
    "chunk": int,
    "first_unit": int,
    "attempt": int,
    "reason": str,
    "action": str,
}

_TRANSPORT_FIELDS = {
    "schema": int,
    "kind": str,
    "chunk": int,
    "codec": str,
    "nbytes": int,
    "encode_s": float,
    "decode_s": float,
}


def validate_trace_record(record: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the trace schema."""
    if not isinstance(record, Mapping):
        raise ValueError(f"trace record must be an object, got {record!r}")
    if record.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {record.get('schema')!r}"
        )
    kind = record.get("kind")
    fields = {
        "header": _HEADER_FIELDS,
        "query": _QUERY_FIELDS,
        "session": _SESSION_FIELDS,
        "retry": _RETRY_FIELDS,
        "transport": _TRANSPORT_FIELDS,
    }.get(kind)
    if fields is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    for name, expected in fields.items():
        if name not in record:
            raise ValueError(f"{kind} record missing field {name!r}")
        value = record[name]
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected)
        if not ok:
            raise ValueError(
                f"{kind} record field {name!r} has type "
                f"{type(value).__name__}, expected {expected.__name__}"
            )
    if kind == "query" and len(record["bitmap"]) != 16:
        raise ValueError("query bitmap must be 16 hex characters")


def read_trace(
    *paths: str, validate: bool = False
) -> Iterator[dict[str, Any]]:
    """Yield records from one or more JSONL trace files, in file order."""
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{line_number}: not valid JSON: {exc}"
                    ) from None
                if validate:
                    try:
                        validate_trace_record(record)
                    except ValueError as exc:
                        raise ValueError(
                            f"{path}:{line_number}: {exc}"
                        ) from None
                yield record


def summarize_trace(*paths: str) -> dict[str, Any]:
    """Aggregate a trace: record counts plus query/session totals."""
    kinds: dict[str, int] = {}
    queries = 0
    bits = 0
    errors = 0
    subframes = 0
    subframes_failed = 0
    missed = 0
    versions: list[str] = []
    sessions: list[dict[str, Any]] = []
    retries: dict[str, int] = {}
    for record in read_trace(*paths, validate=True):
        kind = record["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "header":
            if record["version"] not in versions:
                versions.append(record["version"])
        elif kind == "query":
            queries += 1
            bits += record["bits_sent"]
            errors += record["bit_errors"]
            subframes += record["subframes"]
            subframes_failed += record["subframes_failed"]
            if not record["detected"]:
                missed += 1
        elif kind == "session":
            sessions.append(
                {
                    key: record[key]
                    for key in (
                        "queries",
                        "bits_sent",
                        "bit_errors",
                        "missed_triggers",
                        "elapsed_s",
                        "ber",
                    )
                }
            )
        elif kind == "retry":
            retries[record["reason"]] = (
                retries.get(record["reason"], 0) + 1
            )
    return {
        "records": kinds,
        "versions": versions,
        "queries": {
            "count": queries,
            "bits_sent": bits,
            "bit_errors": errors,
            "ber": errors / bits if bits else 0.0,
            "subframes": subframes,
            "subframes_failed": subframes_failed,
            "missed_triggers": missed,
        },
        "sessions": sessions,
        "retries": retries,
    }
