"""``repro top``: a terminal status view of the sweep service.

The text sibling of the ``/dash`` HTML page: one snapshot of the
service (health census, jobs, metrics registry) rendered as plain
text, either once (``--once``) or refreshed in place on an interval.

Split so every piece is testable without a network:

* :func:`fetch_status` — pull ``/healthz`` + ``/metrics?format=json``
  + ``/jobs`` from a running server (stdlib ``urllib`` only);
* :func:`load_status` — build the same status dict from a metrics
  JSON file (either a bare registry snapshot or the aggregated
  payload ``repro sweep --metrics-out`` writes);
* :func:`render_status` — pure snapshot -> text;
* :func:`run_top` — the loop the CLI drives.

Refreshing uses ANSI clear-screen rather than curses: same visual
result, no terminal-capability dance, and the output stays capturable
by tests and ``| head``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Mapping, TextIO
from urllib.request import urlopen

__all__ = ["fetch_status", "load_status", "render_status", "run_top"]

#: Width of the largest histogram-bucket bar, in characters.
_BAR_WIDTH = 30


def _get_json(url: str, timeout: float) -> Any:
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - http status URL from the operator
        return json.loads(response.read().decode("utf-8"))


def fetch_status(
    base_url: str, *, timeout: float = 5.0
) -> dict[str, Any]:
    """One status snapshot from a running ``repro serve`` instance."""
    base = base_url.rstrip("/")
    return {
        "source": base,
        "health": _get_json(f"{base}/healthz", timeout),
        "metrics": _get_json(f"{base}/metrics?format=json", timeout),
        "jobs": _get_json(f"{base}/jobs", timeout),
    }


def load_status(path: str) -> dict[str, Any]:
    """The same status dict from a metrics JSON file (no server).

    Accepts either a bare registry snapshot (``{"schema": 1,
    "metrics": {...}}``, what ``/metrics?format=json`` serves) or the
    aggregated telemetry payload ``--metrics-out`` writes (snapshot
    nested under its ``"metrics"`` key, with an optional
    ``"transport"`` sibling that is folded in for display).
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, Mapping):
        raise ValueError(f"{path}: not a JSON object")
    nested = payload.get("metrics")
    if isinstance(nested, Mapping) and "schema" in nested:
        # Aggregated telemetry payload: the registry snapshot nests
        # under "metrics" (with an operational "transport" sibling).
        snapshot: Any = nested
        transport = payload.get("transport")
        if isinstance(transport, Mapping) and "schema" in transport:
            from .metrics import merge_metric_snapshots

            snapshot = merge_metric_snapshots([snapshot, transport])
    elif "schema" in payload:
        snapshot = payload
    else:
        raise ValueError(
            f"{path}: holds no metrics snapshot (collected with "
            "metrics disabled?)"
        )
    return {
        "source": path,
        "health": None,
        "metrics": snapshot,
        "jobs": None,
    }


def _format_value(value: Any) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    if isinstance(value, float):
        return str(int(value))
    return str(value)


def _label_text(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return "{" + inner + "}"


def _edge_text(edge: float) -> str:
    return f"{edge:.3g}"


def render_status(status: Mapping[str, Any]) -> str:
    """Render one status snapshot as plain text."""
    lines: list[str] = []
    health = status.get("health")
    if health is not None:
        census = health.get("jobs", {})
        census_text = " ".join(
            f"{state}={census[state]}" for state in sorted(census)
        )
        lines.append(
            f"repro serve v{health.get('version', '?')} @ "
            f"{status.get('source', '?')} -- "
            f"slots {health.get('slots', '?')}, "
            f"queue depth {health.get('queue_depth', '?')}"
        )
        lines.append(f"jobs: {census_text or '(none)'}")
    else:
        lines.append(f"metrics snapshot: {status.get('source', '?')}")
    jobs = status.get("jobs")
    if jobs:
        lines.append("")
        lines.append(
            f"{'ID':<14} {'KIND':<14} {'STATE':<10} "
            f"{'CHUNKS':>8} {'ERROR'}"
        )
        for job in jobs:
            done = job.get("chunks_done", 0)
            total = job.get("n_chunks")
            chunks = f"{done}/{total}" if total else str(done)
            lines.append(
                f"{str(job.get('id', '?')):<14} "
                f"{str(job.get('kind', '?')):<14} "
                f"{str(job.get('state', '?')):<10} "
                f"{chunks:>8} {job.get('error') or ''}".rstrip()
            )
    metrics = status.get("metrics") or {}
    families = metrics.get("metrics", {})
    scalars: list[tuple[str, Any]] = []
    histograms: list[tuple[str, Mapping[str, Any]]] = []
    for name in sorted(families):
        family = families[name]
        for entry in family.get("series", []):
            series_name = name + _label_text(entry.get("labels", {}))
            if family.get("type") == "histogram":
                histograms.append((series_name, entry))
            else:
                scalars.append((series_name, entry.get("value")))
    if scalars:
        lines.append("")
        width = max(len(name) for name, _ in scalars)
        for name, value in scalars:
            lines.append(f"{name:<{width}}  {_format_value(value)}")
    for series_name, entry in histograms:
        counts = entry.get("counts", [])
        edges = entry.get("edges", [])
        lines.append("")
        lines.append(
            f"{series_name}: count {_format_value(entry.get('count', 0))}"
            f", sum {_format_value(entry.get('sum', 0.0))}"
        )
        peak = max(counts, default=0)
        for i, count in enumerate(counts):
            if not count:
                continue
            lo = "-inf" if i == 0 else _edge_text(edges[i - 1])
            hi = (
                _edge_text(edges[i]) if i < len(edges) else "+inf"
            )
            bar = "#" * max(
                1, round(_BAR_WIDTH * count / peak) if peak else 0
            )
            lines.append(
                f"  {lo:>10} .. {hi:<10} {count:>10}  {bar}"
            )
    return "\n".join(lines) + "\n"


def run_top(
    *,
    url: str | None = None,
    input_path: str | None = None,
    once: bool = False,
    interval_s: float = 2.0,
    stream: TextIO | None = None,
    clock: Callable[[], None] | None = None,
) -> int:
    """Drive the top loop; returns the CLI exit code.

    Exactly one of ``url`` / ``input_path`` must be given.  A file
    source implies ``--once`` (its contents cannot change usefully
    between refreshes of the same read).  ``clock`` replaces the
    inter-refresh sleep in tests.
    """
    if (url is None) == (input_path is None):
        raise ValueError("exactly one of url/input_path is required")
    out = stream if stream is not None else sys.stdout
    sleep = clock if clock is not None else (
        lambda: time.sleep(interval_s)
    )
    if interval_s <= 0:
        raise ValueError("interval_s must be > 0")
    while True:
        status = (
            load_status(input_path)
            if input_path is not None
            else fetch_status(url)  # type: ignore[arg-type]
        )
        text = render_status(status)
        if not once and input_path is None:
            out.write("\x1b[2J\x1b[H")
        out.write(text)
        out.flush()
        if once or input_path is not None:
            return 0
        sleep()
