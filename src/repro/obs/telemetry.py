"""The telemetry facade: one object wiring metrics + traces into a system.

:class:`Telemetry` owns a :class:`repro.obs.metrics.MetricsRegistry`,
an optional :class:`repro.obs.trace.TraceWriter` (with a
:class:`repro.obs.trace.TraceSampler`), and the set of
:class:`repro.perf.StageCounters` groups it will snapshot.  Attaching it
to a :class:`repro.core.system.WiTagSystem` points the system, its
error model, its tag FSM and its block-ACK scoreboard at this object;
every hook site in the simulator guards with a single ``is None`` check,
so an unattached simulator (the default) pays nothing.

The scalar per-query path and the batched session engine call the same
hooks with the same values, so telemetry is execution-tier invariant:
the equivalence suite asserts identical metric snapshots and identical
trace event streams across tiers for a pinned seed.

:class:`TelemetrySpec` is the picklable cross-process configuration:
worker processes build their own :class:`Telemetry` from it, and their
snapshots ride the engine's chunk-result channel back to the
coordinator (see :mod:`repro.runner.engine` and
:mod:`repro.obs.aggregate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..perf import StageCounters
from .metrics import (
    BER_BUCKETS,
    SINR_LINEAR_BUCKETS,
    MetricsRegistry,
    log_buckets,
)

#: Per-chunk transport encode times: tens of microseconds (small pickle
#: payloads) up to seconds (huge shared-memory arrays).
ENCODE_SECONDS_BUCKETS = log_buckets(1e-5, 10.0, 13)

#: Simulated AP polling-round durations: milliseconds (a handful of
#: tags, light contention) up to ~a minute (thousands of tags).
ROUND_SECONDS_BUCKETS = log_buckets(1e-3, 1e2, 11)

#: Per-query CSMA channel-access delays: a DIFS (tens of microseconds)
#: up to a second under heavy contention.
ACCESS_DELAY_BUCKETS = log_buckets(1e-5, 1.0, 11)
from .trace import (
    TRACE_SCHEMA,
    TailBuffer,
    TraceSampler,
    TraceWriter,
    fading_digest,
    fading_rows_digest,
    states_digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.fleet import TagFleet
    from ..core.multitag import MultiTagCell, MultiTagQueryResult
    from ..core.session import SessionStats
    from ..core.system import QueryResult, WiTagSystem
    from ..phy.error_model import FadingSample
    from ..sim.network import FleetNetwork, FleetRoundStats

__all__ = ["Telemetry", "TelemetrySpec"]


class Telemetry:
    """Metrics + trace recording for one or more attached systems.

    Args:
        metrics: record the metric families below (link-quality
            histograms, per-layer counters).  When False, the registry
            exists but hot-path hooks no-op — useful for collecting
            stage counters only.
        writer: optional JSONL trace destination; ``None`` disables
            tracing.
        sampler: which query indices to trace (default: all).

    Metric families (all deterministic functions of the physics):

    * ``witag_queries_total``, ``witag_sessions_total`` — counters.
    * ``witag_query_bits_total`` / ``witag_query_bit_errors_total`` —
      tag bits attempted / received in error.
    * ``witag_subframes_total`` / ``witag_subframes_corrupted_total`` —
      per-subframe block-ACK outcomes.
    * ``witag_query_ber`` — histogram of per-query BER (log buckets).
    * ``phy_effective_sinr`` — histogram of per-subframe effective SINR
      (linear value, log-spaced buckets; divide edges by 10^(dB/10) to
      read in dB).
    * ``tag_triggers_total{outcome}``, ``tag_toggles_total{aligned}``,
      ``tag_bits_consumed_total`` — tag FSM behaviour.
    * ``mac_scoreboard_records_total`` / ``mac_scoreboard_resets_total``
      — AP-side scoreboard activity.
    * ``witag_build_info{version}`` / ``witag_rx_power_at_tag_dbm`` —
      gauges stamping the producer and link operating point.
    * ``fleet_*`` — the fleet-scale layer: per-tag delivery counters
      and per-query outcomes (:meth:`on_cell_query`, tier-invariant
      between :class:`repro.core.fleet.TagFleet` and its scalar
      reference cell), per-AP round counters/durations, handoff and
      mobility-invalidation counters, and CSMA channel-access
      delays/stalls (see ``docs/observability.md``).
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        writer: TraceWriter | None = None,
        sampler: TraceSampler | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics_enabled = bool(metrics)
        self.writer = writer
        self.sampler = sampler if sampler is not None else TraceSampler()
        self._tail = TailBuffer(self.sampler.tail if writer else 0)
        self._stage_groups: dict[str, list[StageCounters]] = {}
        self._query_index = 0
        if self.metrics_enabled:
            registry_ = self.registry
            self._queries = registry_.counter(
                "witag_queries_total", "Query cycles executed"
            )
            self._sessions = registry_.counter(
                "witag_sessions_total", "Measurement sessions completed"
            )
            self._bits = registry_.counter(
                "witag_query_bits_total", "Tag bits attempted"
            )
            self._bit_errors = registry_.counter(
                "witag_query_bit_errors_total", "Tag bits received in error"
            )
            self._subframes = registry_.counter(
                "witag_subframes_total", "A-MPDU subframes transmitted"
            )
            self._subframes_bad = registry_.counter(
                "witag_subframes_corrupted_total",
                "Subframes whose FCS failed (block-ACK gap)",
            )
            self._query_ber = registry_.histogram(
                "witag_query_ber", BER_BUCKETS, "Per-query bit error rate"
            )
            self._sinr = registry_.histogram(
                "phy_effective_sinr",
                SINR_LINEAR_BUCKETS,
                "Per-subframe effective SINR (linear)",
            )
            self._triggers = registry_.counter(
                "tag_triggers_total",
                "Trigger detection outcomes",
                labels=("outcome",),
            )
            self._trigger_hit = self._triggers.labels(outcome="detected")
            self._trigger_miss = self._triggers.labels(outcome="missed")
            self._toggles = registry_.counter(
                "tag_toggles_total",
                "Antenna toggles by alignment",
                labels=("aligned",),
            )
            self._toggle_ok = self._toggles.labels(aligned="true")
            self._toggle_bad = self._toggles.labels(aligned="false")
            self._tag_bits = registry_.counter(
                "tag_bits_consumed_total", "Bits consumed from the tag queue"
            )
            self._sb_records = registry_.counter(
                "mac_scoreboard_records_total",
                "MPDUs recorded on the AP scoreboard",
            )
            self._sb_resets = registry_.counter(
                "mac_scoreboard_resets_total",
                "Scoreboard window re-anchors",
            )
            self._chunk_retries = registry_.counter(
                "runner_chunk_retries_total",
                "Engine chunk fault-tolerance events by failure reason",
                labels=("reason",),
            )
            self._chunk_bytes = registry_.counter(
                "runner_chunk_bytes_total",
                "Encoded chunk payload bytes by transport codec",
                labels=("codec",),
            )
            self._chunk_encode = registry_.histogram(
                "runner_chunk_encode_seconds",
                ENCODE_SECONDS_BUCKETS,
                "Per-chunk transport encode wall-clock seconds",
            )
            # Fleet-scale families (multi-tag cells, the vectorized
            # fleet engine, and the multi-AP network layer).  Created
            # eagerly so an instrumented run always exposes the same
            # family set regardless of which hooks fire.
            fleet_queries = registry_.counter(
                "fleet_queries_total",
                "Multi-tag query cycles by outcome",
                labels=("outcome",),
            )
            self._fleet_q_answered = fleet_queries.labels(
                outcome="answered"
            )
            self._fleet_q_idle = fleet_queries.labels(outcome="idle")
            self._fleet_tag_bits = registry_.counter(
                "fleet_tag_bits_total",
                "Tag bits attempted, per tag address",
                labels=("tag",),
            )
            self._fleet_tag_errors = registry_.counter(
                "fleet_tag_bit_errors_total",
                "Tag bits received in error, per tag address",
                labels=("tag",),
            )
            self._fleet_tag_delivered = registry_.counter(
                "fleet_tag_delivered_bits_total",
                "Tag bits delivered intact, per tag address",
                labels=("tag",),
            )
            self._fleet_subframes = registry_.counter(
                "fleet_subframes_total",
                "Multi-tag A-MPDU subframes transmitted",
            )
            self._fleet_subframes_bad = registry_.counter(
                "fleet_subframes_corrupted_total",
                "Multi-tag subframes whose FCS failed",
            )
            self._fleet_ber = registry_.histogram(
                "fleet_query_ber",
                BER_BUCKETS,
                "Per-query bit error rate across responding tags",
            )
            self._fleet_rounds = registry_.counter(
                "fleet_rounds_total",
                "Polling rounds completed, per AP",
                labels=("ap",),
            )
            self._fleet_round_queries = registry_.counter(
                "fleet_round_queries_total",
                "Addressed queries issued, per AP",
                labels=("ap",),
            )
            self._fleet_round_responses = registry_.counter(
                "fleet_round_responses_total",
                "Queries answered by their addressed tag, per AP",
                labels=("ap",),
            )
            self._fleet_round_bits = registry_.counter(
                "fleet_round_bits_total",
                "Tag bits attempted in polling rounds, per AP",
                labels=("ap",),
            )
            self._fleet_round_bit_errors = registry_.counter(
                "fleet_round_bit_errors_total",
                "Tag bits received in error in polling rounds, per AP",
                labels=("ap",),
            )
            self._fleet_round_duration = registry_.histogram(
                "fleet_round_duration_seconds",
                ROUND_SECONDS_BUCKETS,
                "Simulated duration of one AP polling round",
                labels=("ap",),
            )
            self._fleet_handoffs = registry_.counter(
                "fleet_handoffs_total",
                "Tag reassignments between reader cells",
                labels=("from_ap", "to_ap"),
            )
            self._fleet_mobility_ticks = registry_.counter(
                "fleet_mobility_ticks_total", "Mobility ticks advanced"
            )
            self._fleet_invalidations = registry_.counter(
                "fleet_mobility_invalidations_total",
                "Per-fleet link-cache rows refreshed by mobility",
            )
            self._fleet_stalls = registry_.counter(
                "fleet_contention_stalls_total",
                "Channel-access waits that exceeded one DIFS, per AP",
                labels=("ap",),
            )
            self._fleet_access_delay = registry_.histogram(
                "fleet_access_delay_seconds",
                ACCESS_DELAY_BUCKETS,
                "Per-query CSMA channel access delay",
                labels=("ap",),
            )

    # ------------------------------------------------------------------
    # Wiring

    @property
    def trace_enabled(self) -> bool:
        return self.writer is not None

    def attach(self, system: "WiTagSystem") -> "WiTagSystem":
        """Wire this telemetry into a system (idempotent); returns it."""
        self.register_stage_counters("system", system.counters)
        self.register_stage_counters(
            "error_model", system.error_model.counters
        )
        if self.metrics_enabled or self.trace_enabled:
            system.telemetry = self
            system.error_model.telemetry = self
            system.tag.telemetry = self
            system._scoreboard._telemetry = self
            if self.metrics_enabled:
                self._stamp_build_info()
                self.registry.gauge(
                    "witag_rx_power_at_tag_dbm",
                    "Query signal power at the tag antenna",
                ).set(system.rx_power_at_tag_dbm)
        return system

    def attach_cell(self, cell: "MultiTagCell") -> "MultiTagCell":
        """Wire this telemetry into a multi-tag cell (idempotent).

        The cell is the fleet engine's bit-identical scalar reference;
        both call the same :meth:`on_cell_query` hook with the same
        values, so an instrumented fleet and an instrumented
        :meth:`repro.core.fleet.TagFleet.reference_cell` produce
        identical metric snapshots and trace streams.
        """
        for endpoint in cell.endpoints.values():
            self.register_stage_counters(
                "error_model", endpoint.error_model.counters
            )
        if self.metrics_enabled or self.trace_enabled:
            cell.telemetry = self
            cell._scoreboard._telemetry = self
            for endpoint in cell.endpoints.values():
                endpoint.error_model.telemetry = self
            self._stamp_build_info()
        return cell

    def attach_fleet(self, fleet: "TagFleet") -> "TagFleet":
        """Wire this telemetry into a vectorized tag fleet (idempotent).

        The shared decode model's SINR fills and the last-query
        scoreboard replay report directly; :meth:`on_cell_query` and
        :meth:`on_scoreboard_bulk` (for the replay-elided queries)
        cover the rest, keeping every counter and histogram identical
        to an instrumented :meth:`TagFleet.reference_cell` run.
        """
        self.register_stage_counters("error_model", fleet.counters)
        if self.metrics_enabled or self.trace_enabled:
            fleet.telemetry = self
            fleet._scoreboard._telemetry = self
            fleet._decoder.telemetry = self
            self._stamp_build_info()
        return fleet

    def attach_network(self, network: "FleetNetwork") -> "FleetNetwork":
        """Wire this telemetry into a multi-AP fleet network.

        Attaches every cell's fleet (per-query and link-quality
        families) and the network object itself (per-AP round,
        handoff, mobility and channel-access families).
        """
        for fleet in network.fleets:
            self.attach_fleet(fleet)
        if self.metrics_enabled or self.trace_enabled:
            network.telemetry = self
        return network

    def _stamp_build_info(self) -> None:
        if self.metrics_enabled:
            from .. import __version__

            self.registry.gauge(
                "witag_build_info",
                "Producing repro version (value is always 1)",
                labels=("version",),
            ).labels(version=__version__).set(1.0)

    def register_stage_counters(
        self, group: str, counters: StageCounters
    ) -> None:
        """Track a :class:`StageCounters` for snapshotting under ``group``."""
        existing = self._stage_groups.setdefault(group, [])
        if all(c is not counters for c in existing):
            existing.append(counters)

    # ------------------------------------------------------------------
    # Hooks (called by instrumented simulator components)

    def on_query(
        self,
        result: "QueryResult",
        *,
        n_failed: int,
        states: Iterable[Any],
        fading: "FadingSample",
    ) -> None:
        """One completed query cycle (scalar and batch paths)."""
        n_subframes = result.query.n_subframes
        if self.metrics_enabled:
            self._queries.inc()
            n_bits = result.n_bits
            self._subframes.inc(n_subframes)
            self._subframes_bad.inc(n_failed)
            if n_bits:
                self._bits.inc(n_bits)
                self._bit_errors.inc(result.bit_errors)
                self._query_ber.observe(result.bit_errors / n_bits)
        if self.writer is not None:
            index = self._query_index
            record = {
                "schema": TRACE_SCHEMA,
                "kind": "query",
                "index": index,
                "ssn": result.query.ssn,
                "detected": bool(result.detected),
                "bits_sent": int(result.n_bits),
                "bit_errors": int(result.bit_errors),
                "subframes": int(n_subframes),
                "subframes_failed": int(n_failed),
                "bitmap": f"{result.block_ack.bitmap:016x}",
                "states_digest": states_digest(states),
                "fading_digest": fading_digest(
                    fading.direct_gain, fading.tag_fading
                ),
                "cycle_s": float(result.cycle_s),
            }
            if self.sampler.keep(index):
                self.writer.write(record)
            else:
                self._tail.push(record)
        self._query_index += 1

    def on_cell_query(
        self,
        result: "MultiTagQueryResult",
        *,
        n_subframes: int,
        state_rows: Iterable[Any],
        fading_rows: Iterable[tuple[complex, complex]],
        cycle_s: float,
    ) -> None:
        """One multi-tag query cycle (scalar cell and fleet paths).

        Both engines call this once per query, in query order, with
        the bitwise-identical result/state/fading values their shared
        draw-order contract guarantees — so every metric and trace
        field below is tier-invariant by construction.

        Args:
            result: the query outcome (same object shape both paths).
            n_subframes: subframes in the query's A-MPDU.
            state_rows: one per-subframe tag-state plan per decode row
                (responders in responder order; the benign idle row
                for an unanswered query).
            fading_rows: one ``(direct_gain, tag_fading)`` pair per
                decode row, in the same order.
            cycle_s: the query frame's airtime.
        """
        bits_sent = 0
        bit_errors = 0
        for name in result.responded:
            sent = result.per_tag_sent[name]
            received = result.raw_bits[: len(sent)]
            errors = sum(1 for s, r in zip(sent, received) if s != r)
            bits_sent += len(sent)
            bit_errors += errors
            if self.metrics_enabled:
                self._fleet_tag_bits.labels(tag=name).inc(len(sent))
                self._fleet_tag_errors.labels(tag=name).inc(errors)
                self._fleet_tag_delivered.labels(tag=name).inc(
                    len(sent) - errors
                )
        n_failed = n_subframes - int(result.block_ack.bitmap).bit_count()
        if self.metrics_enabled:
            (
                self._fleet_q_answered
                if result.responded
                else self._fleet_q_idle
            ).inc()
            self._fleet_subframes.inc(n_subframes)
            if n_failed:
                self._fleet_subframes_bad.inc(n_failed)
            if bits_sent:
                self._fleet_ber.observe(bit_errors / bits_sent)
        if self.writer is not None:
            index = self._query_index
            record = {
                "schema": TRACE_SCHEMA,
                "kind": "query",
                "index": index,
                "ssn": int(result.block_ack.ssn),
                "detected": bool(result.responded),
                "bits_sent": int(bits_sent),
                "bit_errors": int(bit_errors),
                "subframes": int(n_subframes),
                "subframes_failed": int(n_failed),
                "bitmap": f"{result.block_ack.bitmap:016x}",
                "states_digest": states_digest(
                    state for row in state_rows for state in row
                ),
                "fading_digest": fading_rows_digest(fading_rows),
                "cycle_s": float(cycle_s),
            }
            if self.sampler.keep(index):
                self.writer.write(record)
            else:
                self._tail.push(record)
        self._query_index += 1

    def on_fleet_round(self, stats: "FleetRoundStats") -> None:
        """One AP finished a polling round (multi-AP network layer)."""
        if self.metrics_enabled:
            ap = stats.ap
            self._fleet_rounds.labels(ap=ap).inc()
            self._fleet_round_queries.labels(ap=ap).inc(stats.n_queries)
            self._fleet_round_responses.labels(ap=ap).inc(
                stats.n_responded
            )
            self._fleet_round_bits.labels(ap=ap).inc(stats.bits_sent)
            self._fleet_round_bit_errors.labels(ap=ap).inc(
                stats.bit_errors
            )
            self._fleet_round_duration.labels(ap=ap).observe(
                stats.duration_s
            )

    def on_handoff(self, from_ap: str, to_ap: str) -> None:
        """One tag reassigned between reader cells by mobility."""
        if self.metrics_enabled:
            self._fleet_handoffs.labels(
                from_ap=from_ap, to_ap=to_ap
            ).inc()

    def on_mobility_tick(self, invalidated_rows: int) -> None:
        """One mobility tick advanced across the network's fleets."""
        if self.metrics_enabled:
            self._fleet_mobility_ticks.inc()
            if invalidated_rows:
                self._fleet_invalidations.inc(invalidated_rows)

    def on_channel_access(
        self, ap: str, delay_s: float, *, stalled: bool
    ) -> None:
        """One query's CSMA channel-access wait in one cell."""
        if self.metrics_enabled:
            self._fleet_access_delay.labels(ap=ap).observe(delay_s)
            if stalled:
                self._fleet_stalls.labels(ap=ap).inc()

    def on_session(
        self,
        stats: "SessionStats",
        stage_timings: Mapping[str, Any],
    ) -> None:
        """A measurement session finished a run."""
        if self.metrics_enabled:
            self._sessions.inc()
        if self.writer is not None:
            for record in self._tail.drain():
                self.writer.write(record)
            self.writer.write(
                {
                    "schema": TRACE_SCHEMA,
                    "kind": "session",
                    "queries": int(stats.queries),
                    "bits_sent": int(stats.bits_sent),
                    "bit_errors": int(stats.bit_errors),
                    "missed_triggers": int(stats.missed_triggers),
                    "elapsed_s": float(stats.elapsed_s),
                    "ber": float(stats.ber),
                    "stage_timings": {
                        group: dict(stages)
                        for group, stages in stage_timings.items()
                    },
                }
            )
            self.writer.flush()

    def on_chunk_retry(self, event) -> None:
        """One engine fault-tolerance decision (a ``RetryEvent``).

        Called by the coordinator's scheduler on the *live* telemetry
        (``repro.obs.runtime.active()``) when a chunk is retried, falls
        back to the serial executor, or fails terminally.  Counted under
        ``runner_chunk_retries_total{reason}`` and — when tracing —
        written as a ``retry`` trace record.
        """
        if self.metrics_enabled:
            self._chunk_retries.labels(reason=event.reason).inc()
        if self.writer is not None:
            self.writer.write(
                {
                    "schema": TRACE_SCHEMA,
                    "kind": "retry",
                    "chunk": int(event.chunk_index),
                    "first_unit": int(event.first_unit),
                    "attempt": int(event.attempt),
                    "reason": str(event.reason),
                    "action": str(event.action),
                }
            )
            self.writer.flush()

    def on_chunk_transport(self, event) -> None:
        """One chunk payload crossing the process boundary.

        Called by the coordinator's scheduler on the *live* telemetry
        with a :class:`repro.runner.transport.TransportEvent` after it
        decodes a chunk.  Counted under
        ``runner_chunk_bytes_total{codec}`` and
        ``runner_chunk_encode_seconds``; when tracing, written as a
        ``transport`` trace record.
        """
        if self.metrics_enabled:
            self._chunk_bytes.labels(codec=event.codec).inc(event.nbytes)
            self._chunk_encode.observe(event.encode_s)
        if self.writer is not None:
            self.writer.write(
                {
                    "schema": TRACE_SCHEMA,
                    "kind": "transport",
                    "chunk": int(event.chunk_index),
                    "codec": str(event.codec),
                    "nbytes": int(event.nbytes),
                    "encode_s": float(event.encode_s),
                    "decode_s": float(event.decode_s),
                }
            )
            self.writer.flush()

    def observe_sinr(self, value: float) -> None:
        """One subframe's effective SINR (scalar PHY reference path)."""
        if self.metrics_enabled:
            self._sinr.observe(value)

    def observe_sinrs(self, values) -> None:
        """A batch of effective SINRs (vectorized PHY paths)."""
        if self.metrics_enabled:
            self._sinr.observe_many(values)

    def on_trigger(self, detected: bool) -> None:
        if self.metrics_enabled:
            (self._trigger_hit if detected else self._trigger_miss).inc()

    def on_tag_bits(self, n_bits: int, n_aligned: int) -> None:
        if self.metrics_enabled and n_bits:
            self._tag_bits.inc(n_bits)
            self._toggle_ok.inc(n_aligned)
            self._toggle_bad.inc(n_bits - n_aligned)

    def on_scoreboard_record(self) -> None:
        if self.metrics_enabled:
            self._sb_records.inc()

    def on_scoreboard_reset(self) -> None:
        if self.metrics_enabled:
            self._sb_resets.inc()

    def on_scoreboard_bulk(self, *, records: int, resets: int) -> None:
        """Batch-path equivalent of elided per-query scoreboard traffic.

        The session-batch engine replays only the *last* query of a
        chunk onto the real scoreboard; this hook accounts for the
        ``records``/``resets`` the scalar loop would have performed for
        the earlier queries, keeping scoreboard counters tier-invariant.
        """
        if self.metrics_enabled:
            if records:
                self._sb_records.inc(records)
            if resets:
                self._sb_resets.inc(resets)

    # ------------------------------------------------------------------
    # Snapshots

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()

    def stage_snapshot(self) -> dict[str, dict[str, dict[str, float]]]:
        """Merged per-group stage-counter snapshot."""
        snapshot: dict[str, dict[str, dict[str, float]]] = {}
        for group, counter_list in sorted(self._stage_groups.items()):
            merged = StageCounters()
            for counters in counter_list:
                merged.merge(counters)
            snapshot[group] = merged.as_dict()
        return snapshot

    def chunk_snapshot(self) -> dict[str, Any]:
        """What a worker ships back through the chunk-result channel."""
        return {
            "metrics": (
                self.metrics_snapshot() if self.metrics_enabled else None
            ),
            "stage": self.stage_snapshot(),
        }

    def close(self) -> None:
        """Flush and close the trace writer (if any)."""
        if self.writer is not None:
            for record in self._tail.drain():
                self.writer.write(record)
            self.writer.close()


@dataclass(frozen=True)
class TelemetrySpec:
    """Picklable telemetry configuration for worker processes.

    Workers cannot share a live :class:`Telemetry` (registries and trace
    writers do not cross process boundaries); they build a fresh one
    from this spec per chunk and ship its :meth:`Telemetry.chunk_snapshot`
    back with the chunk's results.  Tracing is deliberately absent here:
    JSONL traces are a single-process concern (use a live
    :class:`Telemetry` and the serial executor, as ``repro trace run``
    does), while metrics and stage counters aggregate cleanly.
    """

    metrics: bool = True

    def build(self) -> Telemetry:
        return Telemetry(metrics=self.metrics)
