"""Metrics registry: labeled counters, gauges, and histograms.

The registry is the numeric half of the observability layer (the trace
half lives in :mod:`repro.obs.trace`).  Design constraints, in order:

1. **Determinism.**  A metric value is a function of the simulated
   physics only — never of wall-clock time or scheduling.  Histograms
   bin *raw* float64 observations against fixed edges (``value <=
   edge``, Prometheus ``le`` semantics), and the scalar
   (:meth:`Histogram.observe`) and vectorized
   (:meth:`Histogram.observe_many`) paths bin and accumulate in exactly
   the same order, so the scalar, per-query vectorized, and
   session-batch execution tiers produce bitwise-identical snapshots
   from the same physics.
2. **Near-zero cost when disabled.**  Nothing here is global: a
   simulator without an attached :class:`repro.obs.Telemetry` pays one
   ``is None`` check per hook site and nothing else.
3. **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
   plain JSON-able dict; :func:`merge_metric_snapshots` folds many of
   them (one per worker chunk) into one, deterministically, so parallel
   and serial runs of the same spec expose identical aggregates.

Exposition: :func:`render_prometheus` emits the Prometheus text format;
snapshots themselves are the JSON format.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "BER_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SINR_LINEAR_BUCKETS",
    "linear_buckets",
    "log_buckets",
    "merge_metric_snapshots",
    "render_prometheus",
]

#: Snapshot / exposition schema version (bump on breaking layout change).
SNAPSHOT_SCHEMA = 1

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` fixed-width bucket upper edges from ``start``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if width <= 0:
        raise ValueError("width must be positive")
    return tuple(start + width * (i + 1) for i in range(count))


def log_buckets(lo: float, hi: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced upper edges spanning ``[lo, hi]``.

    The last edge is exactly ``hi``; observations above it land in the
    implicit ``+Inf`` overflow bucket.
    """
    if count < 2:
        raise ValueError("count must be >= 2")
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    return tuple(
        float(e) for e in np.geomspace(lo, hi, count)
    )


#: Log-spaced edges for *linear* effective-SINR observations, spanning
#: -20 dB .. +40 dB in 2.5 dB steps.  Binning raw linear SINRs (rather
#: than converting to dB first) keeps scalar and vectorized histogram
#: fills bitwise identical — the comparison ``value <= edge`` involves
#: no transcendental function.
SINR_LINEAR_BUCKETS = tuple(
    float(10.0 ** (db / 10.0))
    for db in [(-20.0 + 2.5 * i) for i in range(25)]
)

#: Log-spaced per-query BER edges (1e-3 .. 1.0); a zero-error query
#: falls in the first bucket.
BER_BUCKETS = log_buckets(1e-3, 1.0, 13)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A point-in-time value with a declared cross-process aggregation.

    ``aggregation`` decides how worker snapshots merge: "max" (default;
    idempotent for gauges that are identical everywhere, e.g. a config
    constant), "min", or "sum".
    """

    __slots__ = ("value", "aggregation")

    def __init__(self, aggregation: str = "max") -> None:
        if aggregation not in ("max", "min", "sum"):
            raise ValueError(
                f"aggregation must be max/min/sum, got {aggregation!r}"
            )
        self.value = 0.0
        self.aggregation = aggregation

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``counts[i]`` counts observations with ``value <= edges[i]`` (and
    ``> edges[i-1]``); ``counts[-1]`` is the ``+Inf`` overflow bucket.
    The running ``sum`` is accumulated one observation at a time, in
    observation order, in both :meth:`observe` and
    :meth:`observe_many` — identical sequences of float64 observations
    therefore produce bitwise-identical sums no matter how they were
    batched.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        """Observe a whole array (row-major observation order)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="left")
        binned = np.bincount(idx, minlength=len(self.counts))
        counts = self.counts
        for i, n in enumerate(binned.tolist()):
            counts[i] += n
        # Scalar accumulation keeps the sum bitwise equal to a loop of
        # observe() calls over the same values in the same order.
        total = self.sum
        for v in arr.tolist():
            total += v
        self.sum = total
        self.count += int(arr.size)


class _Family:
    """All series of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "children", "options")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        options: dict[str, Any],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.children: dict[tuple[str, ...], Any] = {}
        self.options = options

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge(self.options.get("aggregation", "max"))
        return Histogram(self.options["buckets"])

    def labels(self, **labels: str):
        """The child series for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._make_child()
        return child

    def _default_child(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...)"
            )
        return self.labels()

    # Label-less convenience: the family proxies its single series.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def observe_many(self, values) -> None:
        self._default_child().observe_many(values)


class MetricsRegistry:
    """A named collection of metric families.

    Families are created idempotently: asking twice for the same name
    returns the same family (and raises if the type or labels differ,
    which would silently corrupt aggregation otherwise).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        **options: Any,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}"
                )
            return family
        family = _Family(name, kind, help, label_names, options)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, "counter", help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        aggregation: str = "max",
    ) -> _Family:
        return self._family(
            name, "gauge", help, labels, aggregation=aggregation
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        labels: Sequence[str] = (),
    ) -> _Family:
        return self._family(
            name, "histogram", help, labels, buckets=tuple(buckets)
        )

    def snapshot(self) -> dict[str, Any]:
        """JSON-able, deterministic view of every series.

        Families appear sorted by name, series sorted by label values,
        so two registries that recorded the same physics serialize to
        identical dicts regardless of creation order.
        """
        metrics: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict[str, Any] = {
                    "labels": dict(zip(family.label_names, key)),
                }
                if family.kind == "histogram":
                    entry.update(
                        edges=list(child.edges),
                        counts=list(child.counts),
                        sum=child.sum,
                        count=child.count,
                    )
                else:
                    entry["value"] = child.value
                    if family.kind == "gauge":
                        entry["aggregation"] = child.aggregation
                series.append(entry)
            metrics[name] = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series,
            }
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def load_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Merge a snapshot into this registry (used by aggregation)."""
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema "
                f"{snapshot.get('schema')!r}"
            )
        for name, family_snap in snapshot["metrics"].items():
            kind = family_snap["type"]
            label_names = tuple(family_snap["label_names"])
            for entry in family_snap["series"]:
                labels = {n: entry["labels"][n] for n in label_names}
                if kind == "counter":
                    child = self.counter(
                        name, family_snap["help"], label_names
                    ).labels(**labels)
                    child.inc(entry["value"])
                elif kind == "gauge":
                    family = self.gauge(
                        name,
                        family_snap["help"],
                        label_names,
                        aggregation=entry.get("aggregation", "max"),
                    )
                    key = tuple(str(labels[n]) for n in label_names)
                    fresh = key not in family.children
                    child = family.labels(**labels)
                    mode = entry.get("aggregation", "max")
                    incoming = float(entry["value"])
                    if fresh:
                        child.set(incoming)
                    elif mode == "sum":
                        child.set(child.value + incoming)
                    elif mode == "min":
                        child.set(min(child.value, incoming))
                    else:
                        child.set(max(child.value, incoming))
                else:
                    family = self.histogram(
                        name,
                        tuple(entry["edges"]),
                        family_snap["help"],
                        label_names,
                    )
                    child = family.labels(**labels)
                    if tuple(child.edges) != tuple(entry["edges"]):
                        raise ValueError(
                            f"histogram {name!r} bucket edges differ "
                            "between snapshots"
                        )
                    for i, n in enumerate(entry["counts"]):
                        child.counts[i] += int(n)
                    child.sum += float(entry["sum"])
                    child.count += int(entry["count"])


def merge_metric_snapshots(
    snapshots: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Fold per-chunk/per-worker snapshots into one.

    Counters and histogram bins sum; gauges combine by their declared
    aggregation.  Merging is performed in iteration order, so callers
    that want determinism (the engine does) must pass snapshots in a
    deterministic order — chunk index order, in practice.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.load_snapshot(snap)
    return merged.snapshot()


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unsupported metrics snapshot schema {snapshot.get('schema')!r}"
        )
    lines: list[str] = []
    for name, family in snapshot["metrics"].items():
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family["series"]:
            labels = entry["labels"]
            if kind == "histogram":
                cumulative = 0
                for edge, count in zip(entry["edges"], entry["counts"]):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(edge)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                cumulative += entry["counts"][-1]
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + "\n"
