"""Structured observability for the WiTAG simulator.

Three pieces, composable but independently usable:

* :mod:`repro.obs.metrics` — a deterministic metrics registry
  (counters, gauges, fixed/log-bucket histograms) with JSON and
  Prometheus-text exposition.
* :mod:`repro.obs.trace` — JSONL query/session trace records with
  head/tail/every-N sampling and schema validation.
* :class:`Telemetry` (:mod:`repro.obs.telemetry`) — the facade that
  wires both into a :class:`repro.core.system.WiTagSystem`; simulators
  without one attached (the default) pay a single ``is None`` check per
  hook site.

Cross-process: :class:`TelemetrySpec` travels to workers,
:class:`TelemetryAggregate` merges what they send back (see
:mod:`repro.runner.engine`), and :mod:`repro.obs.runtime` lets worker
entry points attach the chunk's active telemetry to systems they build.
"""

from .aggregate import TelemetryAggregate
from .metrics import (
    BER_BUCKETS,
    SINR_LINEAR_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    linear_buckets,
    log_buckets,
    merge_metric_snapshots,
    render_prometheus,
)
from .export import chrome_trace, flamegraph_lines
from .runtime import (
    activate,
    active,
    attach_active,
    attach_active_fleet,
    deactivate,
)
from .serve import CHUNK_LATENCY_BUCKETS, ServerMetrics
from .telemetry import Telemetry, TelemetrySpec
from .trace import (
    TRACE_SCHEMA,
    TraceSampler,
    TraceWriter,
    fading_digest,
    fading_rows_digest,
    read_trace,
    states_digest,
    summarize_trace,
    validate_trace_record,
)

__all__ = [
    "BER_BUCKETS",
    "CHUNK_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SINR_LINEAR_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "ServerMetrics",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetryAggregate",
    "TelemetrySpec",
    "TraceSampler",
    "TraceWriter",
    "activate",
    "active",
    "attach_active",
    "attach_active_fleet",
    "chrome_trace",
    "deactivate",
    "fading_digest",
    "fading_rows_digest",
    "flamegraph_lines",
    "linear_buckets",
    "log_buckets",
    "merge_metric_snapshots",
    "read_trace",
    "render_prometheus",
    "states_digest",
    "summarize_trace",
    "validate_trace_record",
]
