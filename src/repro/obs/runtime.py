"""Process-local active telemetry.

Worker entry points (:mod:`repro.runner.workers`) build simulators deep
inside picklable work functions, where the caller cannot reach in to
wire a :class:`~repro.obs.telemetry.Telemetry` by hand.  The engine
instead *activates* a telemetry object for the duration of a chunk, and
the work functions call :func:`attach_active` on each system they build.

This is module-level (not thread-local) state: the runner's process
pool forks one chunk at a time per worker process, and the serial
executor runs chunks sequentially, so a single active slot suffices.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.fleet import TagFleet
    from ..core.system import WiTagSystem
    from .telemetry import Telemetry

__all__ = [
    "activate",
    "active",
    "attach_active",
    "attach_active_fleet",
    "deactivate",
]

_active: "Telemetry | None" = None


def active() -> "Telemetry | None":
    """The telemetry currently activated in this process, if any."""
    return _active


def attach_active(system: "WiTagSystem") -> "WiTagSystem":
    """Attach the active telemetry (if any) to ``system``; returns it."""
    if _active is not None:
        _active.attach(system)
    return system


def attach_active_fleet(fleet: "TagFleet") -> "TagFleet":
    """Attach the active telemetry (if any) to a fleet; returns it."""
    if _active is not None:
        _active.attach_fleet(fleet)
    return fleet


def deactivate() -> None:
    global _active
    _active = None


@contextmanager
def activate(telemetry: "Telemetry | None") -> Iterator["Telemetry | None"]:
    """Make ``telemetry`` the process-local active telemetry.

    Restores the previous active telemetry on exit, so nested engine
    runs (e.g. a traced session inside a sweep) compose.  ``None`` is
    accepted and simply leaves telemetry inactive for the scope.
    """
    global _active
    previous = _active
    _active = telemetry
    try:
        yield telemetry
    finally:
        _active = previous
