"""Timeline exports: Chrome ``trace_event`` JSON and flamegraphs.

Converts the JSONL trace records written by
:class:`repro.obs.trace.TraceWriter` (query spans, session stage
timings, engine retry/transport events) into two standard offline
formats:

* :func:`chrome_trace` — the Chrome tracing / Perfetto ``trace_event``
  JSON object format (load via ``chrome://tracing`` or
  https://ui.perfetto.dev).  Query cycles become complete (``"X"``)
  events laid end-to-end on simulated time; per-group stage timings
  become complete events on their own tracks; retry/transport records
  become instant (``"i"``) events.
* :func:`flamegraph_lines` — Brendan Gregg's collapsed-stack text
  (``group;stage <microseconds>`` per line), ready for
  ``flamegraph.pl`` or speedscope.  Lines sum to the total stage time
  recorded in the trace (to rounding, one microsecond per stage).

Both are pure functions of the record stream, so ``repro trace
export`` output is as deterministic as the trace itself.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "chrome_trace",
    "flamegraph_lines",
    "merge_stage_timings",
]

_US = 1e6  # trace_event timestamps are microseconds


def merge_stage_timings(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, dict[str, dict[str, float]]]:
    """Sum ``session`` records' stage timings across a trace.

    Returns the merged ``{group: {stage: {"seconds", "calls"}}}``
    mapping (the :meth:`repro.perf.StageCounters.as_dict` shape).
    """
    merged: dict[str, dict[str, dict[str, float]]] = {}
    for record in records:
        if record.get("kind") != "session":
            continue
        for group, stages in record.get("stage_timings", {}).items():
            group_out = merged.setdefault(group, {})
            for stage, values in stages.items():
                slot = group_out.setdefault(
                    stage, {"seconds": 0.0, "calls": 0}
                )
                slot["seconds"] += float(values.get("seconds", 0.0))
                slot["calls"] += int(values.get("calls", 0))
    return merged


def flamegraph_lines(
    stage_timings: Mapping[str, Mapping[str, Mapping[str, Any]]],
) -> list[str]:
    """Collapsed-stack flamegraph lines from merged stage timings.

    One line per ``group;stage`` frame, weighted by its recorded
    seconds in integer microseconds (collapsed-stack counts must be
    integers).  The line weights sum to the total stage time to within
    half a microsecond per stage.
    """
    lines: list[str] = []
    for group in sorted(stage_timings):
        for stage in sorted(stage_timings[group]):
            seconds = float(stage_timings[group][stage]["seconds"])
            lines.append(f"{group};{stage} {int(round(seconds * _US))}")
    return lines


def chrome_trace(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Convert trace records into a ``trace_event`` JSON object.

    Layout:

    * ``tid 1`` (*queries*) — one complete event per ``query`` record,
      laid end-to-end on the simulated clock (each spans its
      ``cycle_s``); detection, bit and subframe outcomes ride in
      ``args``.
    * ``tid 2`` (*sessions*) — one instant event per ``session``
      record at the simulated time it closed.
    * ``tid 3`` (*engine*) — instant events for ``retry`` records and
      complete events for ``transport`` records (spanning the chunk's
      encode+decode wall-clock at the current simulated time).
    * one stage track per stage-timing group (``tid >= 4``) — each
      stage a complete event, stages laid end-to-end per group, so
      relative widths read like a flamegraph row.

    Returns the standard ``{"traceEvents": [...], "displayTimeUnit":
    "ms"}`` object; ``json.dump`` it to produce a file Chrome tracing
    and Perfetto load directly.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "ts": 0,
            "args": {"name": "queries"},
        },
    ]
    records = list(records)
    now_us = 0.0
    for record in records:
        kind = record.get("kind")
        if kind == "query":
            dur_us = float(record["cycle_s"]) * _US
            events.append(
                {
                    "name": f"query {record['index']}",
                    "cat": "query",
                    "ph": "X",
                    "ts": now_us,
                    "dur": dur_us,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        key: record[key]
                        for key in (
                            "ssn",
                            "detected",
                            "bits_sent",
                            "bit_errors",
                            "subframes",
                            "subframes_failed",
                            "bitmap",
                        )
                        if key in record
                    },
                }
            )
            now_us += dur_us
        elif kind == "session":
            events.append(
                {
                    "name": "session",
                    "cat": "session",
                    "ph": "i",
                    "s": "t",
                    "ts": now_us,
                    "pid": 1,
                    "tid": 2,
                    "args": {
                        key: record[key]
                        for key in (
                            "queries",
                            "bits_sent",
                            "bit_errors",
                            "elapsed_s",
                            "ber",
                        )
                        if key in record
                    },
                }
            )
        elif kind == "retry":
            events.append(
                {
                    "name": f"retry chunk {record['chunk']}",
                    "cat": "engine",
                    "ph": "i",
                    "s": "t",
                    "ts": now_us,
                    "pid": 1,
                    "tid": 3,
                    "args": {
                        key: record[key]
                        for key in ("attempt", "reason", "action")
                        if key in record
                    },
                }
            )
        elif kind == "transport":
            events.append(
                {
                    "name": f"transport chunk {record['chunk']}",
                    "cat": "engine",
                    "ph": "X",
                    "ts": now_us,
                    "dur": (
                        float(record.get("encode_s", 0.0))
                        + float(record.get("decode_s", 0.0))
                    )
                    * _US,
                    "pid": 1,
                    "tid": 3,
                    "args": {
                        key: record[key]
                        for key in ("codec", "nbytes")
                        if key in record
                    },
                }
            )
    if any(e["tid"] == 2 for e in events):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 2,
                "ts": 0,
                "args": {"name": "sessions"},
            }
        )
    if any(e["tid"] == 3 for e in events):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 3,
                "ts": 0,
                "args": {"name": "engine"},
            }
        )
    timings = merge_stage_timings(records)
    for offset, group in enumerate(sorted(timings)):
        tid = 4 + offset
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "ts": 0,
                "args": {"name": f"stages:{group}"},
            }
        )
        cursor = 0.0
        for stage in sorted(timings[group]):
            values = timings[group][stage]
            dur_us = float(values["seconds"]) * _US
            events.append(
                {
                    "name": stage,
                    "cat": "stage",
                    "ph": "X",
                    "ts": cursor,
                    "dur": dur_us,
                    "pid": 1,
                    "tid": tid,
                    "args": {"calls": int(values["calls"])},
                }
            )
            cursor += dur_us
    return {"traceEvents": events, "displayTimeUnit": "ms"}
