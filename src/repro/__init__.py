"""WiTAG reproduction: MAC-layer WiFi backscatter communication.

A full, simulation-backed reproduction of *WiTAG: Rethinking Backscatter
Communication for WiFi Networks* (Abedi, Mazaheri, Abari, Brecht --
HotNets 2018).

Subpackages:
    * :mod:`repro.core` -- the paper's contribution: query building, tag
      bit encoding/decoding via block ACKs, end-to-end system, sessions.
    * :mod:`repro.phy` -- 802.11n/ac PHY substrate (OFDM, MCS, channels,
      CSI, error models).
    * :mod:`repro.mac` -- 802.11 MAC substrate (frames, A-MPDU, block ACK,
      DCF, WEP/CCMP).
    * :mod:`repro.tag` -- tag hardware models (switch, antenna, oscillator,
      envelope detector, FSM, power, harvesting).
    * :mod:`repro.sim` -- scenarios, floor plans, event loop, tracing.
    * :mod:`repro.baselines` -- prior-system models and the requirements
      comparison.
    * :mod:`repro.analysis` -- BER/CDF/statistics utilities.
    * :mod:`repro.runner` -- parallel experiment engine with a
      bit-identical-for-any-worker-count determinism contract.
    * :mod:`repro.seeding` -- SeedSequence-based stream derivation
      (public facade: :mod:`repro.sim.rng`).

Quickstart:
    >>> from repro.sim import los_scenario
    >>> from repro.core import MeasurementSession
    >>> system, info = los_scenario(tag_from_client_m=2.0, seed=1)
    >>> stats = MeasurementSession(system).run_queries(50)
    >>> stats.ber < 0.05
    True
"""

from importlib import metadata as _metadata

try:
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:
    # Running from a source tree (PYTHONPATH=src) without an installed
    # distribution: fall back to the version pinned in pyproject.toml.
    __version__ = "1.0.0"

__all__ = ["__version__"]
