"""Empirical distribution utilities (for paper Figure 6's BER CDFs)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF over a sample of real values."""

    sorted_values: np.ndarray

    @classmethod
    def from_samples(cls, samples: list[float] | np.ndarray) -> "EmpiricalCdf":
        """Build from raw samples.

        Raises:
            ValueError: for an empty sample.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        return cls(sorted_values=np.sort(arr))

    @property
    def n(self) -> int:
        return int(self.sorted_values.size)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return float(
            np.searchsorted(self.sorted_values, x, side="right") / self.n
        )

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.sorted_values, q))

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def curve(self, points: int = 100) -> list[tuple[float, float]]:
        """(x, F(x)) pairs suitable for plotting or tabulation."""
        if points < 2:
            raise ValueError("need at least 2 points")
        xs = np.linspace(
            float(self.sorted_values[0]), float(self.sorted_values[-1]), points
        )
        return [(float(x), self.evaluate(float(x))) for x in xs]

    def dominates(self, other: "EmpiricalCdf") -> bool:
        """First-order stochastic dominance check: self <= other pointwise.

        True when this distribution is 'better' (smaller values): its CDF
        lies on or above the other's everywhere on a merged grid.  Used to
        assert paper orderings like 'location A's BER CDF is to the left
        of location B's'.
        """
        grid = np.union1d(self.sorted_values, other.sorted_values)
        return all(
            self.evaluate(float(x)) >= other.evaluate(float(x)) - 1e-12
            for x in grid
        )
