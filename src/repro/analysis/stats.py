"""Small statistics helpers shared by experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    @classmethod
    def of(cls, samples: list[float] | np.ndarray) -> "Summary":
        """Summarise a non-empty sample.

        Raises:
            ValueError: for an empty sample.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            median=float(np.median(arr)),
            maximum=float(arr.max()),
        )


def geometric_mean(values: list[float] | np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def db(ratio: float) -> float:
    """Linear power ratio -> dB."""
    if ratio <= 0:
        raise ValueError(f"ratio must be > 0, got {ratio}")
    return 10.0 * float(np.log10(ratio))
