"""Plain-text tables for benchmark output.

The benches print the same rows/series the paper's figures plot; this
module renders them as aligned monospace tables so results are readable in
CI logs and ``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A simple fixed-schema text table.

    Example:
        >>> t = Table("demo", ["x", "y"])
        >>> t.add_row([1, 2.5])
        >>> print(t.render())  # doctest: +ELLIPSIS
        demo...
    """

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: list[object]) -> None:
        """Append a row; values are formatted with :func:`format_value`.

        Raises:
            ValueError: if the arity does not match the schema.
        """
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([format_value(v) for v in values])

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


def format_value(value: object) -> str:
    """Human-friendly scalar formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude < 0.1:
            return f"{value:.4f}"
        return f"{value:.3f}"
    return str(value)
