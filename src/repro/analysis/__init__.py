"""Measurement analysis: BER estimation, CDFs, summaries, text reports."""

from .ber import BitErrorCounter
from .cdf import EmpiricalCdf
from .reporting import Table, format_value
from .stats import Summary, db, geometric_mean
from .sweep import ParameterSweep, SweepPoint

__all__ = [
    "BitErrorCounter",
    "EmpiricalCdf",
    "ParameterSweep",
    "Summary",
    "SweepPoint",
    "Table",
    "db",
    "format_value",
    "geometric_mean",
]
