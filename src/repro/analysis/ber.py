"""Bit-error-rate estimation with confidence intervals.

Minute-long WiTAG runs observe tens of thousands of Bernoulli trials; the
Wilson score interval gives well-behaved uncertainty even at the very low
error counts typical near the endpoints of paper Figure 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class BitErrorCounter:
    """Streaming tally of transmitted vs erroneous bits."""

    bits: int = 0
    errors: int = 0

    def update(self, sent: list[int], received: list[int]) -> None:
        """Accumulate one comparison.

        Raises:
            ValueError: on length mismatch.
        """
        if len(sent) != len(received):
            raise ValueError(
                f"length mismatch: {len(sent)} vs {len(received)}"
            )
        self.bits += len(sent)
        self.errors += sum(1 for a, b in zip(sent, received) if a != b)

    def add(self, bits: int, errors: int) -> None:
        """Accumulate pre-counted totals."""
        if bits < 0 or errors < 0 or errors > bits:
            raise ValueError(f"invalid counts bits={bits} errors={errors}")
        self.bits += bits
        self.errors += errors

    @property
    def ber(self) -> float:
        """Point estimate (0.0 when no bits observed)."""
        return self.errors / self.bits if self.bits else 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval for the error probability.

        Args:
            z: normal quantile (1.96 for 95%).

        Returns:
            (low, high); (0.0, 1.0) when no bits observed.
        """
        if self.bits == 0:
            return (0.0, 1.0)
        n = self.bits
        p = self.ber
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        half = (
            z
            * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
            / denom
        )
        return (max(0.0, centre - half), min(1.0, centre + half))

    def merge(self, other: "BitErrorCounter") -> "BitErrorCounter":
        """Combine two counters into a new one."""
        return BitErrorCounter(
            bits=self.bits + other.bits, errors=self.errors + other.errors
        )
