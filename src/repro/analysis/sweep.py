"""Parameter-sweep scaffolding shared by experiments.

Benches and user studies repeat the same pattern: vary one or two
parameters, run a measurement at each point, tabulate.  This module
factors that into a small declarative helper with deterministic seeding
per point.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from .reporting import Table


def _legacy_measure(ctx, measure: Callable[..., Any]) -> Any:
    """Adapter: engine work unit -> ``measure(seed=..., **parameters)``.

    Reproduces :meth:`ParameterSweep.run`'s additive seeding so the
    serial and parallel paths are interchangeable.
    """
    return measure(seed=ctx.root_seed + ctx.index, **ctx.parameters)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    parameters: dict[str, Any]
    value: Any
    seed: int


@dataclass
class ParameterSweep:
    """Cartesian sweep over named parameter axes.

    Attributes:
        axes: name -> list of values.
        measure: callable invoked as ``measure(seed=..., **parameters)``.
        base_seed: seeds are ``base_seed + point_index`` so each point is
            independent yet reproducible.

    Example:
        >>> sweep = ParameterSweep(
        ...     axes={"x": [1, 2], "y": [10]},
        ...     measure=lambda seed, x, y: x * y,
        ... )
        >>> [p.value for p in sweep.run()]
        [10, 20]
    """

    axes: dict[str, list[Any]]
    measure: Callable[..., Any]
    base_seed: int = 0
    points: list[SweepPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def run(self) -> list[SweepPoint]:
        """Evaluate every point; returns (and stores) the results."""
        names = list(self.axes)
        self.points = []
        for index, combo in enumerate(
            itertools.product(*(self.axes[n] for n in names))
        ):
            parameters = dict(zip(names, combo))
            seed = self.base_seed + index
            value = self.measure(seed=seed, **parameters)
            self.points.append(
                SweepPoint(parameters=parameters, value=value, seed=seed)
            )
        return self.points

    def run_parallel(
        self,
        n_workers: int = 1,
        *,
        chunk_size: int | None = None,
        executor: str = "auto",
    ) -> list[SweepPoint]:
        """Evaluate every point through :mod:`repro.runner`.

        Point seeds are the same ``base_seed + index`` values
        :meth:`run` uses, so a deterministic ``measure`` produces
        identical points on either path and at any worker count.
        ``measure`` must be picklable (module-level callable) to run on
        more than one worker.
        """
        # Imported lazily: the runner builds on this module.
        from ..runner.engine import UnitContext, run_units

        names = list(self.axes)
        units = [
            UnitContext(
                index=index,
                parameters=dict(zip(names, combo)),
                root_seed=self.base_seed,
            )
            for index, combo in enumerate(
                itertools.product(*(self.axes[n] for n in names))
            )
        ]
        result = run_units(
            functools.partial(_legacy_measure, measure=self.measure),
            units,
            seed=self.base_seed,
            n_workers=n_workers,
            chunk_size=chunk_size,
            executor=executor,
        )
        self.points = [
            SweepPoint(
                parameters=unit.parameters,
                value=value,
                seed=self.base_seed + unit.index,
            )
            for unit, value in zip(units, result.values)
        ]
        return self.points

    def table(
        self, title: str, value_label: str = "value"
    ) -> Table:
        """Render the (already run) sweep as a text table.

        Raises:
            RuntimeError: if :meth:`run` has not been called.
        """
        if not self.points:
            raise RuntimeError("run() the sweep before tabulating")
        names = list(self.axes)
        table = Table(title, names + [value_label])
        for point in self.points:
            table.add_row(
                [point.parameters[n] for n in names] + [point.value]
            )
        return table

    def best(self, *, maximize: bool = True) -> SweepPoint:
        """The point with the extreme value (requires comparable values).

        Raises:
            RuntimeError: if :meth:`run` has not been called.
        """
        if not self.points:
            raise RuntimeError("run() the sweep before querying")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.value)
