"""Shared benchmark helpers: the three-tier fast-path hierarchy.

The simulator has three execution tiers for the same physics:

1. **scalar reference** (``phy_fast_path=False``,
   ``session_fast_path=False``) — per-subframe, per-query Python loops;
   the ground truth every optimisation is verified against.
2. **vectorized** (``phy_fast_path=True``) — each query's A-MPDU decodes
   as one numpy batch, but the session still loops query by query.
3. **session-batch** (``session_fast_path=True``) — whole chunks of
   query cycles run as one ``(n_queries, n_subframes)`` computation in
   :meth:`repro.core.system.WiTagSystem.run_queries_batch`.

Tiers 2 and 3 are bitwise identical to each other; tier 1 differs only
through the coded-BER interpolation table unless ``phy_exact_coding``
is set.  The ``repro bench`` CLI, the asserted benchmark in
``benchmarks/test_session_batch.py`` and the tier-1 bench smoke all
measure through these helpers so the three consumers cannot drift
apart.  Timing numbers feed a JSON *trajectory* file (append-only list
of timestamped runs) and a *baseline* file (the floor the benchmarks
assert against); both live under ``benchmarks/``.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from typing import Any

import numpy as np

from .core.session import MeasurementSession
from .sim.scenario import los_scenario

__all__ = [
    "BENCH_SCHEMA",
    "TIERS",
    "adaptive_bench",
    "adaptive_payload",
    "bench_check",
    "fault_tolerance_bench",
    "fleet_bench",
    "fleet_payload",
    "three_tier_bench",
    "tier4_bench",
    "tier4_leg",
    "tier4_payload",
    "timed_session",
    "record_bench_trajectory",
    "load_baseline",
    "update_baseline",
]

#: Version stamp of the ``bench_payload`` / trajectory-entry layout.
#: Schema 2 added the optional ``tier4`` block (PR 7); schema 3 the
#: optional ``fleet`` block (PR 8); schema 4 the optional ``adaptive``
#: block (traffic-aware scheduling + adaptive FEC).  Readers must
#: tolerate entries of any schema in one trajectory file.
BENCH_SCHEMA = 4

#: (label, phy_fast_path, session_fast_path) for each execution tier,
#: slowest first.
TIERS: tuple[tuple[str, bool, bool], ...] = (
    ("scalar", False, False),
    ("vectorized", True, False),
    ("session-batch", True, True),
)


def timed_session(
    queries: int,
    *,
    distance_m: float = 4.0,
    seed: int = 0,
    phy_fast_path: bool = True,
    session_fast_path: bool = True,
    warmup: int = 10,
    telemetry: Any = None,
) -> dict[str, Any]:
    """Build, warm up, and time one LOS measurement session.

    Builds the paper's Figure-5 LOS geometry at ``distance_m``, runs
    ``warmup`` throwaway queries (fills the coded-BER table, channel
    caches and frame memo so the timed region measures steady state),
    resets counters, then times ``run_queries(queries)``.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) is attached
    *after* the warmup, so the timed region measures instrumented
    steady-state throughput and the captured metrics/trace cover exactly
    the timed queries — the telemetry-overhead acceptance test and the
    ``repro bench --metrics-out/--trace-out`` flags use this.

    Returns a dict with the live objects (``stats``, ``session``) plus
    JSON-safe numbers (``wall_s``, ``queries_per_s``, ``ber``,
    ``stage_timings``).  Callers that serialize should pick the
    JSON-safe keys.
    """
    if queries < 1:
        raise ValueError("queries must be >= 1")
    system, _info = los_scenario(
        distance_m, seed=seed, phy_fast_path=phy_fast_path
    )
    session = MeasurementSession(
        system,
        rng=np.random.default_rng(seed + 1),
        session_fast_path=session_fast_path,
    )
    if warmup:
        session.run_queries(warmup)
        session.results.clear()  # stats aggregate results; drop the warmup
        system.counters.reset()
        system.error_model.counters.reset()
    if telemetry is not None:
        telemetry.attach(system)
    start = time.perf_counter()
    stats = session.run_queries(queries)
    wall_s = time.perf_counter() - start
    return {
        "stats": stats,
        "session": session,
        "queries": queries,
        "wall_s": wall_s,
        "queries_per_s": queries / wall_s,
        "ber": stats.ber,
        "stage_timings": session.stage_timings(),
    }


def three_tier_bench(
    queries: int,
    *,
    distance_m: float = 4.0,
    seed: int = 0,
    warmup: int = 10,
    repeats: int = 1,
) -> dict[str, Any]:
    """Time all three execution tiers on the same physics.

    Returns ``{"tiers": {label: timed_session(...)}, "speedups": {...},
    "queries": ..., "distance_m": ..., "seed": ...}`` where the speedup
    keys are ``vectorized_vs_scalar``, ``session_vs_scalar`` and
    ``session_vs_vectorized`` (wall-clock ratios, higher is better).

    ``repeats`` runs each tier that many times and keeps its
    fastest run: the minimum wall-clock is the standard noise-robust
    estimator on shared machines, and every repeat simulates identical
    physics (same seeds), so only the timing varies.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    tiers: dict[str, dict[str, Any]] = {}
    for label, phy_fast, session_fast in TIERS:
        best: dict[str, Any] | None = None
        for _ in range(repeats):
            run = timed_session(
                queries,
                distance_m=distance_m,
                seed=seed,
                phy_fast_path=phy_fast,
                session_fast_path=session_fast,
                warmup=warmup,
            )
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        tiers[label] = best
    scalar = tiers["scalar"]["wall_s"]
    vectorized = tiers["vectorized"]["wall_s"]
    session = tiers["session-batch"]["wall_s"]
    return {
        "queries": queries,
        "distance_m": distance_m,
        "seed": seed,
        "tiers": tiers,
        "speedups": {
            "vectorized_vs_scalar": scalar / vectorized,
            "session_vs_scalar": scalar / session,
            "session_vs_vectorized": vectorized / session,
        },
    }


def _values_digest(values: list) -> str:
    """Stable digest of a result's values for cross-leg bit-identity."""
    import hashlib
    import pickle

    raw = pickle.dumps(list(values), protocol=4)
    return hashlib.blake2b(raw, digest_size=16).hexdigest()


def tier4_leg(
    mode: str,
    *,
    jobs: int = 8,
    sessions: int = 4,
    queries: int = 16,
    seed: int = 0,
    n_workers: int = 2,
) -> dict[str, Any]:
    """Run one leg of the tier-4 benchmark in *this* process.

    Both legs model a serve-style workload: ``jobs`` identical requests,
    each running ``sessions`` sessions of ``queries`` queries through
    the parallel engine.

    * ``mode="session-batch"`` — the tier-3 reference: every job spins
      up a fresh process pool (``executor="process"``) and ships chunks
      with the pickle codec, the way the engine worked before the
      zero-copy transport landed.
    * ``mode="tier4"`` — one persistent :class:`repro.runner.WarmPool`
      shared by every job (its startup is *inside* the timed region),
      shared-memory chunk transport, warm session specs and the
      compiled-kernel tier resolved by ``"auto"``.

    Returns ``{"mode", "wall_s", "jobs_per_s", "sessions_per_s",
    "transport", "digests"}`` where ``digests`` has one entry per job —
    the two legs must produce identical digest lists
    (:func:`tier4_bench` asserts this before it compares any timing).
    """
    from .runner import WarmPool, resolve_transport, run_sessions
    from .runner.workers import SessionSpec

    if mode not in ("session-batch", "tier4"):
        raise ValueError(f"unknown tier4 leg mode {mode!r}")
    if min(jobs, sessions, queries) < 1:
        raise ValueError("jobs, sessions and queries must all be >= 1")
    common: dict[str, Any] = dict(
        queries=queries, seed=seed, chunk_size=1
    )
    digests: list[str] = []
    if mode == "tier4":
        spec = SessionSpec(warm=True)
        transport = resolve_transport("auto")
        start = time.perf_counter()
        with WarmPool(n_workers) as pool:
            for _ in range(jobs):
                result = run_sessions(
                    spec, sessions, pool=pool, transport="auto", **common
                )
                digests.append(_values_digest(result.values))
        wall_s = time.perf_counter() - start
    else:
        spec = SessionSpec()
        transport = "pickle"
        start = time.perf_counter()
        for _ in range(jobs):
            result = run_sessions(
                spec,
                sessions,
                executor="process",
                n_workers=n_workers,
                transport="pickle",
                **common,
            )
            digests.append(_values_digest(result.values))
        wall_s = time.perf_counter() - start
    return {
        "mode": mode,
        "wall_s": wall_s,
        "jobs_per_s": jobs / wall_s,
        "sessions_per_s": jobs * sessions / wall_s,
        "transport": transport,
        "digests": digests,
    }


def _run_leg_subprocess(params: dict[str, Any]) -> dict[str, Any]:
    """Run :func:`tier4_leg` in a cold child interpreter.

    A cold parent is the honest harness for this benchmark: the serve
    and sweep coordinators never execute physics themselves, so every
    fresh pool worker pays the full first-use cost (coded-BER table,
    channel caches, frame memo) that the warm pool exists to amortise.
    Running legs in the *bench* process would let leftover parent state
    leak into the fork-based reference leg and understate that cost.
    """
    import json as json_mod
    import subprocess
    import sys as sys_mod

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    code = (
        "import sys, json\n"
        "from repro.bench import tier4_leg\n"
        "print(json.dumps(tier4_leg(**json.loads(sys.argv[1]))))\n"
    )
    proc = subprocess.run(
        [sys_mod.executable, "-c", code, json_mod.dumps(params)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"tier4 bench leg failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json_mod.loads(proc.stdout.splitlines()[-1])


def tier4_bench(
    jobs: int = 8,
    sessions: int = 4,
    queries: int = 16,
    *,
    seed: int = 0,
    n_workers: int = 2,
    repeats: int = 1,
    cold_parent: bool = True,
) -> dict[str, Any]:
    """Time the tier-4 fast path against the tier-3 parallel reference.

    Runs both :func:`tier4_leg` modes (``repeats`` times each, keeping
    the fastest), asserts their per-job value digests are identical —
    a faster-but-wrong pool fails before any timing compares — and
    reports the wall-clock ratio.

    ``cold_parent=True`` (the default, used by ``repro bench --tier4``
    and the gated benchmark) executes each leg in a fresh child
    interpreter; see :func:`_run_leg_subprocess` for why.  The
    ``bench_smoke`` twin sets it to ``False`` to keep tier-1 cheap
    while exercising the same code path in-process.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    params = dict(
        jobs=jobs,
        sessions=sessions,
        queries=queries,
        seed=seed,
        n_workers=n_workers,
    )
    legs: dict[str, dict[str, Any]] = {}
    for mode in ("session-batch", "tier4"):
        best: dict[str, Any] | None = None
        for _ in range(repeats):
            if cold_parent:
                run = _run_leg_subprocess({"mode": mode, **params})
            else:
                run = tier4_leg(mode, **params)
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        legs[mode] = best
    identical = legs["session-batch"]["digests"] == legs["tier4"]["digests"]
    if not identical:
        raise AssertionError(
            "tier4 leg produced different results than the session-batch "
            "reference — digests diverge"
        )
    return {
        **params,
        "cold_parent": cold_parent,
        "legs": legs,
        "identical": identical,
        "speedup_tier4_vs_session_batch": (
            legs["session-batch"]["wall_s"] / legs["tier4"]["wall_s"]
        ),
    }


def tier4_payload(result: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe view of a :func:`tier4_bench` result (drops digests)."""
    return {
        key: result[key]
        for key in (
            "jobs",
            "sessions",
            "queries",
            "seed",
            "n_workers",
            "cold_parent",
            "identical",
            "speedup_tier4_vs_session_batch",
        )
    } | {
        "legs": {
            mode: {
                k: leg[k]
                for k in (
                    "wall_s",
                    "jobs_per_s",
                    "sessions_per_s",
                    "transport",
                )
            }
            for mode, leg in result["legs"].items()
        }
    }


def _fleet_round_digest(results: dict[str, Any]) -> str:
    """Stable digest of one poll round's results (fleet or scalar)."""
    normalized = [
        (
            name,
            result.block_ack.ssn,
            result.block_ack.bitmap,
            result.raw_bits,
            result.responded,
            tuple(sorted(result.per_tag_sent.items())),
        )
        for name, result in sorted(results.items())
    ]
    return _values_digest(normalized)


def fleet_bench(
    n_tags: int = 2000,
    rounds: int = 1,
    *,
    seed: int = 0,
    bits_per_tag: int = 64,
    batch_tags: int = 256,
    kernel_tier: str = "auto",
    equivalence_tags: int = 64,
    repeats: int = 1,
) -> dict[str, Any]:
    """Time the struct-of-arrays fleet engine against the scalar cell.

    The warehouse headline benchmark: one reader polling ``n_tags``
    tags for ``rounds`` addressed rounds, run twice —

    * ``scalar`` — the reference :class:`repro.core.multitag.MultiTagCell`
      (``fleet.reference_cell()``), one ``poll_round`` loop of
      per-query, per-MPDU Python;
    * ``fleet`` — the vectorized :class:`repro.core.fleet.TagFleet`
      decoding each round as chunked ``(n_tags, n_subframes)`` batch
      passes, in its default configuration (interpolated coded-BER
      table, like execution tiers 2–4).

    Before any timing, an **equivalence gate** builds a small
    ``equivalence_tags`` fleet with ``phy_exact_coding=True`` and
    asserts one full poll round is bit-identical to its scalar
    reference cell — a faster-but-wrong engine fails here, before any
    timing compares (same contract as :func:`tier4_bench`; the full
    equivalence matrix lives in ``tests/test_fleet.py``).  The timed
    legs then load identical data bits and differ only through the
    coded-BER interpolation, exactly like tiers 2–4 versus tier 1.
    Builds happen outside the timed region; ``repeats`` reruns each
    leg from a fresh build and keeps the fastest wall-clock.

    Fleet construction goes through
    :class:`repro.runner.workers.FleetSpec` (the same picklable spec
    the parallel engine ships to workers), so the benchmark and the
    runner wiring cannot drift apart.
    """
    from .runner.engine import UnitContext
    from .runner.workers import FleetSpec

    if min(n_tags, rounds, repeats, equivalence_tags) < 1:
        raise ValueError(
            "n_tags, rounds, repeats and equivalence_tags must be >= 1"
        )
    ctx = UnitContext(index=0, parameters={}, root_seed=seed)
    data_rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(0xF1EE7,))
    )

    # Equivalence gate: exact-coding fleet vs scalar reference,
    # bit for bit, before any timing is trusted.
    gate_spec = FleetSpec(
        n_tags=equivalence_tags,
        batch_tags=batch_tags,
        kernel_tier=kernel_tier,
        phy_exact_coding=True,
    )
    gate_fleet = gate_spec(ctx)
    gate_cell = gate_fleet.reference_cell()
    gate_bits = [
        [int(b) for b in data_rng.integers(0, 2, bits_per_tag)]
        for _ in range(equivalence_tags)
    ]
    for name, bits in zip(gate_fleet.names, gate_bits):
        gate_fleet.load_bits(name, list(bits))
        gate_cell.load_bits(name, list(bits))
    identical = _fleet_round_digest(
        gate_fleet.poll_round()
    ) == _fleet_round_digest(gate_cell.poll_round())
    if not identical:
        raise AssertionError(
            "fleet engine produced different results than the scalar "
            "MultiTagCell reference — equivalence gate digests diverge"
        )

    spec = FleetSpec(
        n_tags=n_tags, batch_tags=batch_tags, kernel_tier=kernel_tier
    )
    payloads = [
        [int(b) for b in data_rng.integers(0, 2, bits_per_tag * rounds)]
        for _ in range(n_tags)
    ]

    def run_leg(mode: str) -> dict[str, Any]:
        fleet = spec(ctx)
        target: Any = fleet if mode == "fleet" else fleet.reference_cell()
        for name, bits in zip(fleet.names, payloads):
            target.load_bits(name, list(bits))
        start = time.perf_counter()
        for _ in range(rounds):
            target.poll_round()
        wall_s = time.perf_counter() - start
        return {
            "mode": mode,
            "wall_s": wall_s,
            "queries_per_s": n_tags * rounds / wall_s,
        }

    legs: dict[str, dict[str, Any]] = {}
    for mode in ("scalar", "fleet"):
        best: dict[str, Any] | None = None
        for _ in range(repeats):
            run = run_leg(mode)
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        legs[mode] = best
    return {
        "n_tags": n_tags,
        "rounds": rounds,
        "seed": seed,
        "bits_per_tag": bits_per_tag,
        "batch_tags": batch_tags,
        "kernel_tier": kernel_tier,
        "equivalence_tags": equivalence_tags,
        "legs": legs,
        "identical": identical,
        "speedup_fleet_vs_scalar": (
            legs["scalar"]["wall_s"] / legs["fleet"]["wall_s"]
        ),
    }


def fleet_payload(result: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe view of a :func:`fleet_bench` result (drops digests)."""
    return {
        key: result[key]
        for key in (
            "n_tags",
            "rounds",
            "seed",
            "bits_per_tag",
            "batch_tags",
            "kernel_tier",
            "equivalence_tags",
            "identical",
            "speedup_fleet_vs_scalar",
        )
    } | {
        "legs": {
            mode: {k: leg[k] for k in ("wall_s", "queries_per_s")}
            for mode, leg in result["legs"].items()
        }
    }


def adaptive_bench(
    units: int = 3,
    rounds: int = 6,
    windows_per_round: int = 100,
    *,
    seed: int = 0,
    n_workers: int = 2,
    equivalence_rounds: int = 2,
    equivalence_windows: int = 40,
) -> dict[str, Any]:
    """Adaptive vs static-paper FEC under bursty ambient traffic.

    The quality benchmark of the traffic layer: ``units`` independent
    deployments (seeded from ``seed`` via the engine's unit substreams)
    each run two :class:`repro.runner.workers.AdaptiveLinkSpec` legs —

    * ``static`` — the paper's scheme: the tag rides every
      transmission opportunity and uses one fixed Reed-Solomon
      redundancy;
    * ``adaptive`` — the predictive opportunity scheduler skips
      forecast-busy windows and the redundancy controller walks the
      parity ladder against observed block corruption.

    Before any comparison, an **equivalence gate** runs one adaptive
    unit three ways — scalar session engine (serial), batch session
    engine (serial), and batch engine under a process pool — and
    asserts the reports (ride/skip decision string, rung trajectory,
    delivered bits, goodput) are bit-identical; a faster-but-different
    traffic layer fails here, before any quality numbers are compared
    (same contract as :func:`tier4_bench` / :func:`fleet_bench`).

    Returns per-leg aggregates plus the headline ratios:
    ``goodput_ratio_adaptive_vs_static`` (mean adaptive goodput over
    mean static goodput; > 1 means the adaptive scheme delivers more
    correct message bits per second of tag existence) and
    ``energy_ratio_static_vs_adaptive`` (energy per delivered bit,
    static over adaptive; > 1 means the adaptive tag spends less
    energy per delivered bit).
    """
    from functools import partial

    from .runner import SweepSpec, run_sweep
    from .runner.workers import AdaptiveLinkSpec, adaptive_link_stats

    if min(units, rounds, windows_per_round) < 1:
        raise ValueError("units, rounds and windows_per_round must be >= 1")

    # Equivalence gate: one adaptive unit, three execution tiers,
    # bit-identical reports before any quality numbers are trusted.
    gate_sweep = SweepSpec(axes={"unit": [0]}, seed=seed)
    digests: dict[str, str] = {}
    for label, fast_path, executor, workers in (
        ("serial-scalar", False, "serial", 1),
        ("serial-batch", True, "serial", 1),
        ("process-batch", True, "process", 2),
    ):
        measure = partial(
            adaptive_link_stats,
            spec=AdaptiveLinkSpec(session_fast_path=fast_path),
            rounds=equivalence_rounds,
            windows_per_round=equivalence_windows,
        )
        result = run_sweep(
            measure, gate_sweep, executor=executor, n_workers=workers
        )
        digests[label] = _values_digest(result.values)
    identical = len(set(digests.values())) == 1
    if not identical:
        raise AssertionError(
            "adaptive link produced different results across execution "
            f"tiers — equivalence gate digests diverge: {digests}"
        )

    sweep = SweepSpec(axes={"unit": list(range(units))}, seed=seed)
    legs: dict[str, dict[str, Any]] = {}
    for label, adaptive in (("static", False), ("adaptive", True)):
        measure = partial(
            adaptive_link_stats,
            spec=AdaptiveLinkSpec(adaptive=adaptive),
            rounds=rounds,
            windows_per_round=windows_per_round,
        )
        start = time.perf_counter()
        result = run_sweep(measure, sweep, n_workers=n_workers)
        wall_s = time.perf_counter() - start
        values = list(result.values)
        delivered = sum(v["delivered_bits"] for v in values)
        legs[label] = {
            "wall_s": wall_s,
            "units": [
                {
                    key: value[key]
                    for key in (
                        "seed",
                        "rides",
                        "windows",
                        "rungs",
                        "message_bits",
                        "delivered_bits",
                        "block_error_rate",
                        "goodput_bps",
                        "energy_per_bit_uj",
                    )
                }
                for value in values
            ],
            "delivered_bits": delivered,
            "mean_goodput_bps": (
                sum(v["goodput_bps"] for v in values) / len(values)
            ),
            "mean_energy_per_bit_uj": (
                sum(v["energy_per_bit_uj"] for v in values) / len(values)
            ),
        }
    goodput_ratio = (
        legs["adaptive"]["mean_goodput_bps"]
        / legs["static"]["mean_goodput_bps"]
    )
    energy_ratio = (
        legs["static"]["mean_energy_per_bit_uj"]
        / legs["adaptive"]["mean_energy_per_bit_uj"]
    )
    wins = sum(
        1
        for a, s in zip(
            legs["adaptive"]["units"], legs["static"]["units"]
        )
        if a["goodput_bps"] > s["goodput_bps"]
    )
    return {
        "units": units,
        "rounds": rounds,
        "windows_per_round": windows_per_round,
        "seed": seed,
        "identical": identical,
        "gate_digests": digests,
        "legs": legs,
        "adaptive_wins": wins,
        "goodput_ratio_adaptive_vs_static": goodput_ratio,
        "energy_ratio_static_vs_adaptive": energy_ratio,
    }


def adaptive_payload(result: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe view of an :func:`adaptive_bench` result (drops units)."""
    return {
        key: result[key]
        for key in (
            "units",
            "rounds",
            "windows_per_round",
            "seed",
            "identical",
            "adaptive_wins",
            "goodput_ratio_adaptive_vs_static",
            "energy_ratio_static_vs_adaptive",
        )
    } | {
        "legs": {
            label: {
                k: leg[k]
                for k in (
                    "wall_s",
                    "delivered_bits",
                    "mean_goodput_bps",
                    "mean_energy_per_bit_uj",
                )
            }
            for label, leg in result["legs"].items()
        }
    }


def fault_tolerance_bench(
    n_units: int = 64,
    *,
    seed: int = 0,
    chunk_size: int = 8,
    checkpoint_path: str | None = None,
) -> dict[str, Any]:
    """Overhead microbench for the engine's fault-tolerance layer.

    Runs the same cheap physics-free sweep
    (:func:`repro.runner.workers.rng_probe`) four ways on the serial
    executor — plain, with a :class:`RetryPolicy` armed (no faults),
    with chunk checkpointing, and under injected crashes with retries —
    and reports wall-clock ratios against the plain run plus whether all
    four produced identical values (they must: the determinism contract
    covers retried and checkpointed runs).

    ``checkpoint_path`` defaults to a throwaway temporary file; pass a
    path to inspect the spilled chunks afterwards.
    """
    import tempfile

    from .runner import FaultSpec, RetryPolicy, SweepSpec, run_sweep
    from .runner.workers import rng_probe

    if n_units < 2:
        raise ValueError("n_units must be >= 2")
    spec = SweepSpec(
        axes={"unit": list(range(n_units))},
        seed=seed,
        chunk_size=chunk_size,
    )

    def timed(**kwargs: Any) -> tuple[Any, float]:
        start = time.perf_counter()
        result = run_sweep(rng_probe, spec, **kwargs)
        return result, time.perf_counter() - start

    plain, plain_wall = timed()
    armed, armed_wall = timed(retry=RetryPolicy(max_attempts=3))
    cleanup: str | None = None
    if checkpoint_path is None:
        handle = tempfile.NamedTemporaryFile(
            suffix=".ckpt.jsonl", delete=False
        )
        handle.close()
        os.unlink(handle.name)
        checkpoint_path = cleanup = handle.name
    try:
        spilled, spill_wall = timed(checkpoint=checkpoint_path, resume=False)
    finally:
        if cleanup is not None and os.path.exists(cleanup):
            os.unlink(cleanup)
    faults = FaultSpec(crash=(0, n_units // 2))
    faulty, faulty_wall = timed(
        retry=RetryPolicy(max_attempts=3), faults=faults
    )
    return {
        "n_units": n_units,
        "chunk_size": chunk_size,
        "seed": seed,
        "identical": (
            plain.values == armed.values == spilled.values == faulty.values
        ),
        "walls_s": {
            "plain": plain_wall,
            "retry_armed": armed_wall,
            "checkpointed": spill_wall,
            "faulty_retried": faulty_wall,
        },
        "overhead": {
            "retry_armed": armed_wall / plain_wall,
            "checkpointed": spill_wall / plain_wall,
            "faulty_retried": faulty_wall / plain_wall,
        },
        "retry_events": faulty.retry_summary(),
    }


def _json_safe_tier(tier: dict[str, Any]) -> dict[str, Any]:
    """The JSON-serializable slice of a :func:`timed_session` result."""
    return {
        key: tier[key]
        for key in (
            "queries",
            "wall_s",
            "queries_per_s",
            "ber",
            "stage_timings",
        )
    }


def bench_payload(
    result: dict[str, Any],
    *,
    tier4: dict[str, Any] | None = None,
    fleet: dict[str, Any] | None = None,
    adaptive: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """JSON-serializable view of a :func:`three_tier_bench` result.

    ``tier4`` optionally attaches a :func:`tier4_bench` result as a
    fourth-tier block (stored via :func:`tier4_payload`); ``fleet``
    likewise attaches a :func:`fleet_bench` result (via
    :func:`fleet_payload`); ``adaptive`` an :func:`adaptive_bench`
    result (via :func:`adaptive_payload`).  Entries without these
    blocks remain valid — trajectory readers must treat ``tier4``,
    ``fleet`` and ``adaptive`` as optional, and schema-1 entries (no
    ``schema`` field) as equivalent to ``schema: 1``.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "queries": result["queries"],
        "distance_m": result["distance_m"],
        "seed": result["seed"],
        "speedups": dict(result["speedups"]),
        "tiers": {
            label: _json_safe_tier(tier)
            for label, tier in result["tiers"].items()
        },
    }
    if tier4 is not None:
        payload["tier4"] = tier4_payload(tier4)
    if fleet is not None:
        payload["fleet"] = fleet_payload(fleet)
    if adaptive is not None:
        payload["adaptive"] = adaptive_payload(adaptive)
    return payload


def record_bench_trajectory(
    path: str, entry: dict[str, Any], *, timestamp: str | None = None
) -> dict[str, Any]:
    """Append a timestamped entry to the JSON trajectory list at ``path``.

    The file holds a JSON list, one object per bench run; a missing or
    empty file starts a new list.  ``timestamp`` defaults to the current
    UTC time in ISO-8601.  Returns the entry as written (with its
    ``recorded_at`` field) so callers can report it.
    """
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
    stamped = {"recorded_at": timestamp, **entry}
    history: list[dict[str, Any]] = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            text = handle.read().strip()
        if text:
            history = json.loads(text)
            if not isinstance(history, list):
                raise ValueError(
                    f"trajectory file {path} does not hold a JSON list"
                )
    history.append(stamped)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return stamped


def load_baseline(
    key: str, path: str, default: dict[str, Any] | None = None
) -> dict[str, Any] | None:
    """Read one baseline entry from a ``baselines.json``-style file."""
    if not os.path.exists(path):
        return default
    with open(path, encoding="utf-8") as handle:
        baselines = json.load(handle)
    return baselines.get(key, default)


#: The regression gates ``bench_check`` walks: each maps a check name
#: to (baseline key, baseline field, extractor over a trajectory
#: entry).  Extractors return ``None`` when the entry doesn't carry
#: the measurement — schema 1 entries have no ``tier4``/``fleet``
#: blocks, and readers must tolerate every schema in one file.
_BENCH_CHECKS: tuple[tuple[str, str, str, Any], ...] = (
    (
        "session_batch",
        "session_batch",
        "speedup_session_vs_vectorized",
        lambda entry: (entry.get("speedups") or {}).get(
            "session_vs_vectorized"
        ),
    ),
    (
        "tier4",
        "tier4",
        "speedup_tier4_vs_session_batch",
        lambda entry: (
            entry["tier4"].get("speedup_tier4_vs_session_batch")
            if isinstance(entry.get("tier4"), dict)
            else None
        ),
    ),
    (
        "fleet",
        "fleet",
        "speedup_fleet_vs_scalar",
        lambda entry: (
            entry["fleet"].get("speedup_fleet_vs_scalar")
            if isinstance(entry.get("fleet"), dict)
            else None
        ),
    ),
    (
        "adaptive",
        "adaptive",
        "goodput_ratio_adaptive_vs_static",
        lambda entry: (
            entry["adaptive"].get("goodput_ratio_adaptive_vs_static")
            if isinstance(entry.get("adaptive"), dict)
            else None
        ),
    ),
)


def bench_check(
    trajectory_path: str,
    baselines_path: str,
    *,
    threshold: float = 0.8,
) -> dict[str, Any]:
    """The bench regression watchdog: latest trajectory vs baselines.

    For each gate in :data:`_BENCH_CHECKS`, finds the *latest*
    trajectory entry carrying that measurement (entries are
    append-only, mixed schema 1-3; older schemas simply lack the newer
    blocks) and compares it against the pinned baseline ratio: the
    check fails when ``measured < threshold * baseline``.  A gate with
    no baseline pinned or no trajectory entry is reported as skipped,
    not failed — a fresh clone with an empty trajectory passes.

    Returns ``{"ok", "threshold", "checks": [...], "skipped": [...]}``
    where each check carries ``name``, ``measured``, ``baseline``,
    ``floor``, ``recorded_at`` and ``ok``.  The CLI (``repro bench
    check``) renders this and exits nonzero when any check fails.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    entries: list[dict[str, Any]] = []
    if os.path.exists(trajectory_path):
        with open(trajectory_path, encoding="utf-8") as handle:
            text = handle.read().strip()
        if text:
            entries = json.loads(text)
            if not isinstance(entries, list):
                raise ValueError(
                    f"trajectory file {trajectory_path} does not hold "
                    "a JSON list"
                )
    checks: list[dict[str, Any]] = []
    skipped: list[dict[str, Any]] = []
    for name, baseline_key, field, extract in _BENCH_CHECKS:
        baseline_entry = load_baseline(baseline_key, baselines_path)
        baseline = (
            baseline_entry.get(field)
            if isinstance(baseline_entry, dict)
            else None
        )
        measured = None
        recorded_at = None
        for entry in entries:
            value = extract(entry)
            if value is not None:
                measured = float(value)
                recorded_at = entry.get("recorded_at")
        if baseline is None or measured is None:
            skipped.append(
                {
                    "name": name,
                    "reason": (
                        "no baseline pinned"
                        if baseline is None
                        else "no trajectory entry"
                    ),
                }
            )
            continue
        floor = threshold * float(baseline)
        checks.append(
            {
                "name": name,
                "measured": measured,
                "baseline": float(baseline),
                "floor": floor,
                "recorded_at": recorded_at,
                "ok": measured >= floor,
            }
        )
    return {
        "ok": all(check["ok"] for check in checks),
        "threshold": threshold,
        "checks": checks,
        "skipped": skipped,
    }


def update_baseline(key: str, entry: dict[str, Any], path: str) -> None:
    """Rewrite one key of a baselines file, preserving all other keys."""
    baselines: dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            baselines = json.load(handle)
    baselines[key] = entry
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baselines, handle, indent=2)
        handle.write("\n")
