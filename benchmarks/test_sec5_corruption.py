"""E8 / paper §5: the subframe-corruption mechanism, microscopically.

Verifies the MAC-level story end to end on real frame bytes: a single
channel estimate covers the whole A-MPDU; corrupting chosen subframes
flips exactly their block-ACK bits; delimiter resynchronisation isolates
the damage; and the same holds on CCMP-encrypted frames.
"""

import numpy as np

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.core.config import EncryptionMode
from repro.phy.channel import ChannelGeometry
from repro.sim.scenario import build_system

PATTERN = [1, 0, 1, 1, 0, 0, 1, 0] * 7 + [1, 0, 1, 0, 1, 0]  # 62 bits


def run_pattern(encryption, key=None, seed=40):
    system, _ = build_system(
        ChannelGeometry.on_line(8.0, 1.0),
        encryption=encryption,
        encryption_key=key,
        seed=seed,
    )
    system.load_tag_bits(list(PATTERN))
    result = system.run_query()
    return result


def compute():
    return {
        "open": run_pattern(EncryptionMode.OPEN),
        "wpa2": run_pattern(
            EncryptionMode.WPA2_CCMP, key=b"0123456789abcdef"
        ),
        "wep": run_pattern(EncryptionMode.WEP, key=b"12345"),
    }


def test_sec5_subframe_corruption(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        "Section 5: selective subframe corruption -> block-ACK bits"
    )
    table = Table(
        "a 62-bit pattern through one query A-MPDU, per encryption mode",
        ["network", "bits sent", "bit errors", "bitmap (hex)"],
    )
    for name, result in results.items():
        table.add_row(
            [
                name,
                result.n_bits,
                result.bit_errors,
                f"{result.block_ack.bitmap:016x}",
            ]
        )
    print(table.render())
    print(
        "paper: corrupted subframes read 0, intact ones 1, regardless of "
        "encryption; the AP needs no modification"
    )

    for name, result in results.items():
        assert result.detected, name
        assert result.n_bits == 62
        # Near the endpoint the pattern must come through almost clean.
        assert result.bit_errors <= 3, name
        # Trigger subframes always survive.
        assert result.block_ack.bit(0) and result.block_ack.bit(1)
    # Encryption changes nothing about the mechanism.
    open_errors = results["open"].bit_errors
    assert abs(results["wpa2"].bit_errors - open_errors) <= 3
    assert abs(results["wep"].bit_errors - open_errors) <= 3
