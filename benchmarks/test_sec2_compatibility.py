"""E6 / paper §1-§2: the requirements and compatibility comparison.

Regenerates the argument structure of the paper's intro and related-work
sections as two tables: (1) the four §1 requirements scored per system and
(2) deployability of each system across concrete network profiles.
"""

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.baselines import (
    all_systems,
    compatibility_matrix,
    default_profiles,
    render_requirement_table,
    requirement_matrix,
)


def compute():
    return (
        requirement_matrix(),
        compatibility_matrix(default_profiles()),
    )


def test_sec2_compatibility_matrix(benchmark):
    scores, matrix = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner("Sections 1-2: backscatter system comparison")
    print(render_requirement_table(scores))

    profiles = default_profiles()
    table = Table(
        "deployability per network profile",
        ["system"] + [p.describe() for p in profiles],
    )
    for model in all_systems():
        table.add_row(
            [model.name]
            + [matrix[(model.name, p.describe())] for p in profiles]
        )
    print(table.render())

    table = Table(
        "reported throughput ranges (paper Section 6.2: '1 Kbps - 300 Kbps' field)",
        ["system", "min (Kbps)", "max (Kbps)", "oscillator"],
    )
    for model in all_systems():
        low, high = model.reported_throughput_bps
        table.add_row(
            [
                model.name,
                low / 1e3,
                high / 1e3,
                f"{model.oscillator_hz / 1e3:g} kHz",
            ]
        )
    print(table.render())

    # The paper's central claim: WiTAG alone meets all four requirements.
    winners = [s.system for s in scores if s.satisfies_all]
    assert winners == ["WiTAG"]
    # And WiTAG alone deploys on every modern profile.
    for profile in profiles:
        key = ("WiTAG", profile.describe())
        if profile.standard.value in ("802.11n", "802.11ac"):
            assert matrix[key]
    modern_wpa = [
        p.describe() for p in profiles if "wpa" in p.describe()
    ]
    for model in all_systems():
        if model.name == "WiTAG":
            continue
        assert not any(
            matrix[(model.name, profile)] for profile in modern_wpa
        ), f"{model.name} should fail on encrypted modern networks"
