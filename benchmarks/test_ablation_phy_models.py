"""Ablations grounding the PHY model choices (DESIGN.md §5, items 5-7).

Three studies beyond the paper's own figures:

* **MIMO fragility** — how much a rank-one tag perturbation is amplified
  by zero-forcing stream separation, vs stream count and channel
  conditioning.  Grounds the error model's ``mismatch_gain_db``.
* **Fading correlation** — iid-per-query vs Gauss-Markov (~100 ms
  coherence): mean BER barely moves, burst structure changes a lot, which
  is what drives the error-control finding (message-level retransmission).
* **802.11ax** — the paper's forward-compatibility claim, quantified: tag
  rate on HE numerology for several tag clocks.
"""

import numpy as np

from conftest import print_banner, run_point
from repro.analysis.reporting import Table
from repro.phy.he import witag_he_throughput_bps
from repro.phy.mimo import mimo_fragility_db
from repro.sim.scenario import los_scenario

COHERENCE_CHOICES = {"iid per query": None, "100 ms Gauss-Markov": 0.1}


def burst_profile(coherence_s):
    """Mean BER and mean bad-query run length at mid-span."""
    system, _ = los_scenario(4.0, seed=8, coherence_time_s=coherence_s)
    from repro.core.session import MeasurementSession

    session = MeasurementSession(system, rng=np.random.default_rng(2))
    stats = session.run_for(2.0)
    bers = session.per_query_ber()
    runs, current = [], 0
    for b in bers:
        if b > 0.2:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    mean_run = float(np.mean(runs)) if runs else 0.0
    return stats.ber, mean_run


def compute():
    fragility = {
        (n, k): mimo_fragility_db(n, rician_k_db=k, n_trials=200)
        for n in (1, 2, 3, 4)
        for k in (5.0, 15.0)
    }
    fading = {
        name: burst_profile(coherence)
        for name, coherence in COHERENCE_CHOICES.items()
    }
    ax_rates = {
        clock: witag_he_throughput_bps(tag_clock_hz=clock)
        for clock in (25e3, 50e3)
    }
    return fragility, fading, ax_rates


def test_ablation_phy_models(benchmark):
    fragility, fading, ax_rates = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    print_banner("MIMO fragility: rank-one tag perturbation vs ZF separation")
    table = Table(
        "extra effective mismatch power vs SISO (dB, median)",
        ["streams", "rich scatter (K=5 dB)", "strong LOS (K=15 dB)"],
    )
    for n in (1, 2, 3, 4):
        table.add_row([f"{n}x{n}", fragility[(n, 5.0)], fragility[(n, 15.0)]])
    print(table.render())
    print(
        "grounds mismatch_gain_db: the paper's 3x3 testbed in strong-LOS "
        "conditions sits near +10 dB"
    )

    print_banner("Fading correlation: burst structure at mid-span")
    table = Table(
        "2 s at tag position 4 m of 8 m",
        ["fading process", "mean BER", "mean bad-query run"],
    )
    for name, (ber, run) in fading.items():
        table.add_row([name, ber, run])
    print(table.render())

    print_banner("802.11ax compatibility (paper Section 4)")
    table = Table(
        "tag rate with HE numerology (13.6 us symbols)",
        ["tag clock (kHz)", "throughput (Kbps)"],
    )
    for clock, rate in ax_rates.items():
        table.add_row([clock / 1e3, rate / 1e3])
    print(table.render())

    # MIMO: 3x3 strong-LOS amplification is material; SISO is ~0.
    assert abs(fragility[(1, 15.0)]) < 1.0
    assert fragility[(3, 15.0)] > 7.0
    assert fragility[(3, 15.0)] > fragility[(3, 5.0)] + 5.0
    # Fading correlation: similar mean BER, longer bursts when correlated.
    iid_ber, iid_run = fading["iid per query"]
    cor_ber, cor_run = fading["100 ms Gauss-Markov"]
    assert cor_ber == np.float64(cor_ber)
    assert abs(cor_ber - iid_ber) < 0.08
    assert cor_run >= iid_run
    # ax: compatible and in the tens of Kbps, scaling with the tag clock.
    assert 25e3 < ax_rates[50e3] < 45e3
    assert ax_rates[25e3] < ax_rates[50e3]
