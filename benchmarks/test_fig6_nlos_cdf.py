"""E2 / paper Figure 6: CDF of BER in non-line-of-sight scenarios.

Setup (paper §6.2): tag 1 m from the client; the AP is one (location A,
~7 m) or several (location B, ~17 m) rooms away behind wood/concrete
walls; 60 one-minute runs per location with people moving.

We run many short measurement runs per location and build the empirical
CDF of per-run BER.  Expected shape: both locations achieve low BER at all
times; B's CDF sits to the right of A's (paper: 90th-percentile BER 0.007
at A vs 0.018 at B).
"""

import numpy as np

from conftest import print_banner, run_point
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import Table
from repro.sim.scenario import nlos_scenario

N_RUNS = 12
RUN_SECONDS = 0.4


def measure_location(location: str) -> EmpiricalCdf:
    run_bers = []
    for run in range(N_RUNS):
        system, _ = nlos_scenario(location, seed=1000 + run)
        stats, _ = run_point(system, RUN_SECONDS, seed=run)
        run_bers.append(stats.ber)
    return EmpiricalCdf.from_samples(run_bers)


def test_fig6_nlos_ber_cdf(benchmark):
    cdfs = benchmark.pedantic(
        lambda: {loc: measure_location(loc) for loc in ("A", "B")},
        rounds=1,
        iterations=1,
    )

    print_banner(
        "Figure 6: CDF of BER, non-line-of-sight locations A (~7 m) and "
        "B (~17 m from the AP)"
    )
    table = Table(
        f"{N_RUNS} runs x {RUN_SECONDS:g}s per location",
        ["location", "median BER", "p90 BER", "max BER"],
    )
    for location, cdf in cdfs.items():
        table.add_row(
            [location, cdf.median, cdf.percentile(90), cdf.percentile(100)]
        )
    print(table.render())
    print("paper: 90th-percentile BER 0.007 (A) and 0.018 (B); B worse")

    a, b = cdfs["A"], cdfs["B"]
    # Both locations work (low BER despite blocked line of sight).
    assert a.percentile(90) < 0.02
    assert b.percentile(90) < 0.05
    # Ordering: B is worse than A.
    assert b.percentile(90) > a.percentile(90)
    assert b.median >= a.median
