"""Tier-4 fast-path benchmark: warm pool + shm transport vs tier 3.

Times a serve-style stream of identical small jobs two ways through
the shared :func:`repro.bench.tier4_bench` helper: the tier-3
*session-batch* reference (a fresh process pool and pickle transport
per job, exactly what ``run_sessions`` did before this PR) and the
tier-4 fast path (one persistent :class:`repro.runner.warm.WarmPool`
across every job, zero-copy shared-memory chunk transport, and
``SessionSpec(warm=True)`` cache reuse inside the workers).  Each leg
runs in a fresh child interpreter so the reference cannot borrow the
parent's already-warm import/PHY state.

``tier4_bench`` itself asserts the two legs' per-job value digests are
identical before any timing compares — a faster-but-wrong pool fails
loudly — and this test asserts the speedup floor
``max(2.5, 0.8 * baseline)`` where ``baseline`` is the
``speedup_tier4_vs_session_batch`` recorded in
``benchmarks/baselines.json`` by ``repro bench --tier4
--update-baseline``.

Marked ``bench`` (wall-clock sensitive): excluded from the default
pytest split, run with ``pytest benchmarks/test_tier4.py -m bench``.
The tiny ``bench_smoke`` twin in ``tests/test_bench_smoke.py`` keeps
this machinery exercised by tier-1.
"""

import os

import pytest

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.bench import (
    bench_payload,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
    tier4_bench,
)

JOBS = 8
SESSIONS = 4
QUERIES = 16
SEED = 0
N_WORKERS = 2
REPEATS = 2  # best-of-N wall clock per leg: robust to scheduler noise

_BENCH_DIR = os.path.dirname(__file__)
_BASELINES = os.path.join(_BENCH_DIR, "baselines.json")
_TRAJECTORY = os.path.join(_BENCH_DIR, "BENCH_session_batch.json")


@pytest.mark.bench
def test_tier4_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: tier4_bench(
            JOBS,
            SESSIONS,
            QUERIES,
            seed=SEED,
            n_workers=N_WORKERS,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    legs = result["legs"]
    speedup = result["speedup_tier4_vs_session_batch"]

    baseline_entry = load_baseline("tier4", _BASELINES)
    baseline = (
        float(baseline_entry["speedup_tier4_vs_session_batch"])
        if baseline_entry
        else 2.5
    )
    floor = max(2.5, 0.8 * baseline)

    # Record the trajectory before asserting: a regression run still
    # leaves its numbers behind for the post-mortem.  The tier-4 block
    # rides in the shared trajectory file as a schema-2 entry; a tiny
    # three-tier run keeps the entry shape uniform with the
    # session-batch bench's entries.
    context = three_tier_bench(
        QUERIES, distance_m=4.0, seed=SEED, repeats=1
    )
    payload = bench_payload(context, tier4=result)
    payload["floor_tier4"] = floor
    payload["baseline_speedup_tier4_vs_session_batch"] = baseline
    record_bench_trajectory(_TRAJECTORY, payload)
    benchmark.extra_info["tier4"] = payload["tier4"]

    print_banner(
        "tier-4 fast path: warm pool + shm transport vs session-batch"
    )
    table = Table(
        f"{JOBS} jobs x {SESSIONS} sessions x {QUERIES} queries, "
        f"{N_WORKERS} worker(s), seed {SEED} (cold child per leg)",
        ["mode", "wall (s)", "jobs/s", "sessions/s", "transport"],
    )
    for mode in ("session-batch", "tier4"):
        leg = legs[mode]
        table.add_row(
            [
                mode,
                leg["wall_s"],
                leg["jobs_per_s"],
                leg["sessions_per_s"],
                leg["transport"],
            ]
        )
    print(table.render())
    print(
        f"tier4/session-batch {speedup:.2f}x "
        f"(floor {floor:.2f}x from baseline {baseline:.2f}x)"
    )

    # Correctness before speed: tier4_bench already raised if the
    # per-job digests diverged; restate the invariant loudly here.
    assert result["identical"], "tier-4 values diverged from reference"
    assert legs["tier4"]["transport"] == "shm"
    assert legs["session-batch"]["transport"] == "pickle"

    # The loud regression gate (ISSUE: >= 3x measured at record time;
    # the enforced floor is max(2.5, 0.8 * recorded baseline)).
    assert speedup >= floor, (
        f"tier-4 fast path regressed: {speedup:.2f}x < {floor:.2f}x "
        f"(baseline {baseline:.2f}x)"
    )
