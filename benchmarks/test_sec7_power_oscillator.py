"""E5 / paper §7: oscillator power and temperature-drift comparison.

Three claims to regenerate:

1. oscillator power grows ~f^2, putting precision 20 MHz clocks above
   1 mW while WiTAG's 50 kHz crystal draws microwatts;
2. system power budgets: WiTAG a few uW, channel-shifting tags either
   ~40 uW (ring, fragile) or >1 mW (precision, not battery-free);
3. a ring oscillator's temperature drift (600 kHz per 5 degC at 20 MHz)
   destroys tag timing when the room warms, while WiTAG's crystal-clocked
   tag keeps its BER.
"""

import numpy as np

from conftest import print_banner, run_point
from repro.analysis.reporting import Table
from repro.sim.scenario import los_scenario
from repro.tag.oscillator import (
    power_vs_frequency_uw,
    ring_oscillator_20mhz,
    witag_crystal_50khz,
)
from repro.tag.power import (
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    witag_budget,
)
from repro.tag.state_machine import TagStateMachine

FREQUENCIES_HZ = [50e3, 500e3, 2e6, 11e6, 20e6]
TEMPERATURES_C = [25.0, 27.0, 30.0]


def ber_vs_temperature(oscillator, temperature_c, seed):
    tag = TagStateMachine(
        oscillator=oscillator, rng=np.random.default_rng(seed)
    )
    system, _ = los_scenario(2.0, seed=seed, tag=tag)
    system.temperature_c = temperature_c
    stats, _ = run_point(system, 0.5, seed=seed)
    return stats.ber


def sweep():
    drift = {
        (kind, t): ber_vs_temperature(osc_factory(), t, seed=300 + int(t))
        for kind, osc_factory in (
            ("crystal-50kHz", witag_crystal_50khz),
            ("ring-20MHz", ring_oscillator_20mhz),
        )
        for t in TEMPERATURES_C
    }
    return drift


def test_sec7_power_and_drift(benchmark):
    drift = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Section 7: oscillator power ~ f^2")
    table = Table(
        "precision-oscillator power vs clock frequency",
        ["frequency", "power (uW)"],
    )
    for f in FREQUENCIES_HZ:
        table.add_row([f"{f / 1e6:g} MHz", power_vs_frequency_uw(f)])
    print(table.render())

    print_banner("Section 7: tag power budgets")
    table = Table(
        "itemised budgets",
        ["system", "total (uW)", "battery-free feasible"],
    )
    for budget in (
        witag_budget(),
        channel_shift_ring_budget(),
        channel_shift_precision_budget(),
    ):
        table.add_row(
            [budget.name, budget.total_uw, budget.battery_free_feasible]
        )
    print(table.render())

    print_banner(
        "Section 7 footnote 4: BER vs ambient temperature "
        "(tag 2 m from client, LOS)"
    )
    table = Table(
        "ring oscillators drift ~600 kHz per 5 degC at 20 MHz",
        ["oscillator", "25 degC", "27 degC", "30 degC"],
    )
    for kind in ("crystal-50kHz", "ring-20MHz"):
        table.add_row([kind] + [drift[(kind, t)] for t in TEMPERATURES_C])
    print(table.render())
    print(
        "paper: channel-shift tags 'work only in environments where the "
        "temperature is very stable'; WiTAG's 50 kHz crystal does not care"
    )

    # Claim 1: f^2 scaling spans the uW -> mW divide.
    assert power_vs_frequency_uw(50e3) < 10.0
    assert power_vs_frequency_uw(20e6) > 1000.0
    # Claim 2: budgets ordered WiTAG << ring << precision.
    assert witag_budget().total_uw < 10.0
    assert not channel_shift_precision_budget().battery_free_feasible
    # Claim 3: the crystal-clocked tag is temperature-immune; the
    # ring-clocked tag collapses within a few degrees.
    assert drift[("crystal-50kHz", 30.0)] < 0.05
    assert drift[("ring-20MHz", 30.0)] > 0.2
    assert drift[("ring-20MHz", 25.0)] < 0.05  # fine when temp is stable
