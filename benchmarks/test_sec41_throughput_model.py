"""E4 / paper §4.1: the throughput model and its design levers.

§4.1's argument: one bit per subframe, so minimise subframe airtime (null
payloads, high PHY rate) and amortise overheads over many subframes.  This
bench sweeps the three levers — subframes per A-MPDU, PHY rate, and the
tag clock (which floors the subframe duration) — and prints the resulting
tag throughput, validating that the defaults land at the paper's ~40 Kbps
operating point.
"""

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.core.config import WiTagConfig
from repro.core.throughput import analytic_throughput_bps, query_cycle
from repro.phy.mcs import ht_mcs

SUBFRAME_COUNTS = [8, 16, 32, 48, 64]
MCS_INDICES = [3, 5, 7]
TAG_CLOCKS_HZ = [12.5e3, 25e3, 50e3]


def sweep():
    results = {}
    for n in SUBFRAME_COUNTS:
        results[("subframes", n)] = analytic_throughput_bps(
            WiTagConfig(n_subframes=n)
        )
    for idx in MCS_INDICES:
        results[("mcs", idx)] = analytic_throughput_bps(
            WiTagConfig(mcs=ht_mcs(idx))
        )
    for clock in TAG_CLOCKS_HZ:
        results[("clock", clock)] = analytic_throughput_bps(
            WiTagConfig(tag_clock_hz=clock)
        )
    return results


def test_sec41_throughput_model(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("Section 4.1: analytic tag-throughput model")
    table = Table(
        "throughput vs A-MPDU size (64-subframe bitmap max)",
        ["subframes", "throughput (Kbps)"],
    )
    for n in SUBFRAME_COUNTS:
        table.add_row([n, results[("subframes", n)] / 1e3])
    print(table.render())

    table = Table(
        "throughput vs query MCS (subframe floored by 50 kHz tag clock)",
        ["MCS", "throughput (Kbps)"],
    )
    for idx in MCS_INDICES:
        table.add_row([idx, results[("mcs", idx)] / 1e3])
    print(table.render())

    table = Table(
        "throughput vs tag clock (subframe duration = one clock period)",
        ["tag clock (kHz)", "throughput (Kbps)"],
    )
    for clock in TAG_CLOCKS_HZ:
        table.add_row([clock / 1e3, results[("clock", clock)] / 1e3])
    print(table.render())

    cycle = query_cycle(WiTagConfig())
    print(
        f"default cycle: access {cycle.access_s * 1e6:.0f} us + query "
        f"{cycle.query_s * 1e6:.0f} us + SIFS {cycle.sifs_s * 1e6:.0f} us "
        f"+ block ACK {cycle.block_ack_s * 1e6:.0f} us = "
        f"{cycle.total_s * 1e3:.2f} ms for {cycle.payload_bits} bits"
    )
    print("paper: ~40 Kbps at the 64-subframe operating point")

    # More subframes monotonically help (overhead amortisation).
    series = [results[("subframes", n)] for n in SUBFRAME_COUNTS]
    assert all(a < b for a, b in zip(series, series[1:]))
    # Default operating point ~= the paper's 40 Kbps.
    assert 38e3 < results[("subframes", 64)] < 45e3
    # The tag clock is the real rate limiter: halving it nearly halves rate.
    assert results[("clock", 25e3)] < 0.65 * results[("clock", 50e3)]
    # MCS barely matters once subframes are clock-floored.
    mcs_rates = [results[("mcs", idx)] for idx in MCS_INDICES]
    assert max(mcs_rates) < 1.1 * min(mcs_rates)
