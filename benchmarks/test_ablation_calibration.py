"""Calibration sensitivity: the knob moves magnitudes, never shapes.

DESIGN.md and the error-model docstring claim that the one calibration
knob (``mismatch_gain_db``) affects absolute BER levels only, while every
*relative* result — the Figure 5 U-shape, the endpoint/mid-span ordering —
comes from the physics.  This bench verifies that claim by re-running the
LOS sweep at several knob settings.
"""

import numpy as np

from conftest import print_banner, run_point
from repro.analysis.reporting import Table
from repro.sim.scenario import los_scenario

GAINS_DB = [19.0, 22.0, 25.0]
POSITIONS_M = [1.0, 4.0, 7.0]


def sweep():
    results = {}
    for gain in GAINS_DB:
        for d in POSITIONS_M:
            system, _ = los_scenario(
                d, seed=400 + int(d), mismatch_gain_db=gain
            )
            stats, _ = run_point(system, 0.8, seed=int(d))
            results[(gain, d)] = stats.ber
    return results


def test_calibration_sensitivity(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner(
        "Calibration sensitivity: LOS BER vs mismatch_gain_db "
        "(default 22 dB)"
    )
    table = Table(
        "BER at three tag positions per knob setting",
        ["mismatch gain (dB)"] + [f"tag @ {d:g} m" for d in POSITIONS_M],
    )
    for gain in GAINS_DB:
        table.add_row([gain] + [results[(gain, d)] for d in POSITIONS_M])
    print(table.render())
    print(
        "shape (mid-span peak) survives every setting; only the absolute "
        "level moves — the knob calibrates magnitude, the physics decides "
        "structure"
    )

    for gain in GAINS_DB:
        end_a = results[(gain, 1.0)]
        mid = results[(gain, 4.0)]
        end_b = results[(gain, 7.0)]
        # The U-shape must hold at every knob setting.
        assert mid > end_a, f"gain {gain}: mid-span must be worst"
        assert mid > end_b, f"gain {gain}: mid-span must be worst"
        assert max(end_a, end_b) < 0.05
    # And more gain (stronger effective corruption) lowers mid-span BER.
    mids = [results[(gain, 4.0)] for gain in GAINS_DB]
    assert mids[0] > mids[-1]
