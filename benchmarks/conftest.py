"""Shared helpers for the benchmark harness.

Each bench regenerates one table/figure from the paper's evaluation and
prints the corresponding rows/series (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured numbers).  ``pytest-benchmark`` times
one representative simulation unit per experiment; the scientific output
is the printed table, produced once per bench.
"""

import os
import sys

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.core.session import MeasurementSession  # noqa: E402


def engine_workers(default: int = 2) -> int:
    """Worker count for engine-driven benches (REPRO_BENCH_WORKERS=N).

    Results are bit-identical at any value — the knob only trades
    wall-clock for process overhead (set 1 to force the serial path).
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", default)))


def run_point(system, sim_seconds=1.0, seed=0):
    """Run one measurement point; returns (stats, per-query BERs)."""
    session = MeasurementSession(system, rng=np.random.default_rng(seed))
    stats = session.run_for(sim_seconds)
    return stats, session.per_query_ber()


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
