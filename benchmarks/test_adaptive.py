"""Adaptive-link benchmark: traffic-aware scheduling + adaptive FEC
vs the static paper scheme, gated on goodput quality.

Unlike the timing benchmarks around it, this gate measures a *quality*
ratio: mean goodput (correct message bits per second of tag existence)
of the adaptive leg — predictive opportunity scheduler plus the
Reed-Solomon redundancy ladder — over the static-paper leg, which
rides every transmission opportunity at one fixed redundancy.  Both
legs run the same deterministic seeds under the same bursty ON/OFF
ambient traffic, so the measured ratio is reproducible, not
wall-clock-noise.

``adaptive_bench`` runs an execution-tier equivalence gate before any
comparison (scalar vs batch session engine vs process pool, digest
compared), mirroring ``tier4_bench``/``fleet_bench``.  This test then
asserts the ratio floor ``max(1.0, 0.8 * baseline)`` where ``baseline``
is the ``goodput_ratio_adaptive_vs_static`` recorded in
``benchmarks/baselines.json`` by ``repro bench --adaptive
--update-baseline`` — i.e. the adaptive scheme must keep beating the
paper-static scheme under dynamic traffic.

Marked ``bench``: excluded from the default pytest split, run with
``pytest benchmarks/test_adaptive.py -m bench``.  The tiny
``bench_smoke`` twin in ``tests/test_bench_smoke.py`` keeps the
machinery exercised by tier-1.
"""

import os

import pytest

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.bench import (
    adaptive_bench,
    bench_payload,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
)

UNITS = 3
ROUNDS = 6
WINDOWS_PER_ROUND = 100
SEED = 0

_BENCH_DIR = os.path.dirname(__file__)
_BASELINES = os.path.join(_BENCH_DIR, "baselines.json")
_TRAJECTORY = os.path.join(_BENCH_DIR, "BENCH_session_batch.json")


@pytest.mark.bench
@pytest.mark.adaptive
def test_adaptive_goodput_beats_static(benchmark):
    result = benchmark.pedantic(
        lambda: adaptive_bench(
            UNITS, ROUNDS, WINDOWS_PER_ROUND, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    legs = result["legs"]
    ratio = result["goodput_ratio_adaptive_vs_static"]

    baseline_entry = load_baseline("adaptive", _BASELINES)
    baseline = (
        float(baseline_entry["goodput_ratio_adaptive_vs_static"])
        if baseline_entry
        else 1.0
    )
    floor = max(1.0, 0.8 * baseline)

    # Record the trajectory before asserting: a regression run still
    # leaves its numbers behind for the post-mortem.
    context = three_tier_bench(16, distance_m=4.0, seed=SEED, repeats=1)
    payload = bench_payload(context, adaptive=result)
    payload["floor_adaptive"] = floor
    payload["baseline_goodput_ratio"] = baseline
    record_bench_trajectory(_TRAJECTORY, payload)
    benchmark.extra_info["adaptive"] = payload["adaptive"]

    print_banner(
        "adaptive link: predictive scheduling + FEC ladder vs static paper"
    )
    table = Table(
        f"{UNITS} units x {ROUNDS} rounds x {WINDOWS_PER_ROUND} windows, "
        f"seed {SEED} (equivalence-gated)",
        ["scheme", "delivered bits", "goodput (bit/s)", "uJ/bit"],
    )
    for scheme in ("static", "adaptive"):
        leg = legs[scheme]
        table.add_row(
            [
                scheme,
                leg["delivered_bits"],
                leg["mean_goodput_bps"],
                leg["mean_energy_per_bit_uj"],
            ]
        )
    print(table.render())
    print(
        f"goodput adaptive/static {ratio:.2f}x "
        f"(floor {floor:.2f}x from baseline {baseline:.2f}x); "
        f"energy static/adaptive "
        f"{result['energy_ratio_static_vs_adaptive']:.2f}x; "
        f"adaptive wins {result['adaptive_wins']}/{UNITS} units"
    )

    # Correctness before quality: adaptive_bench already raised if the
    # tier digests diverged; restate the invariant loudly here.
    assert result["identical"], "adaptive link diverged across tiers"

    # The quality gate (ISSUE: adaptive must beat static under bursty
    # traffic; enforced floor is max(1.0, 0.8 * recorded baseline)).
    assert ratio >= floor, (
        f"adaptive link regressed: {ratio:.2f}x < {floor:.2f}x "
        f"(baseline {baseline:.2f}x)"
    )
    # The win must also hold per-unit on the majority of deployments.
    assert result["adaptive_wins"] * 2 > UNITS

    # The energy story must not invert: the adaptive tag never spends
    # more energy per delivered bit than the ride-everything baseline.
    assert result["energy_ratio_static_vs_adaptive"] >= 1.0
