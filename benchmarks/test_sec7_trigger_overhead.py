"""Ablation / paper §7: trigger-subframe count.

§7: query detection uses "a specific, known bit pattern in the payload of
the first few subframes", and "since each A-MPDU aggregates up to 64
subframes this does not have a significant impact on the data rate."

This bench quantifies the trade: more trigger subframes improve detection
at marginal signal levels but linearly eat payload bits.
"""

import numpy as np

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.core.config import WiTagConfig
from repro.core.throughput import analytic_throughput_bps
from repro.tag.envelope_detector import TriggerDetector

TRIGGER_COUNTS = [1, 2, 4, 8]
RX_LEVELS_DBM = [-25.0, -40.0, -44.0]
#: Weak trigger contrast, to expose detection differences at low signal.
CONTRAST_DB = 1.1


def compute():
    rows = []
    for n in TRIGGER_COUNTS:
        detector = TriggerDetector(
            n_trigger_subframes=n, pattern_contrast_db=CONTRAST_DB
        )
        rate = analytic_throughput_bps(
            WiTagConfig(n_trigger_subframes=n)
        )
        detection = {
            level: detector.query_detection_probability(level)
            for level in RX_LEVELS_DBM
        }
        rows.append({"n": n, "rate": rate, "detection": detection})
    return rows


def test_sec7_trigger_overhead(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner("Section 7 ablation: trigger subframes vs rate/detection")
    table = Table(
        f"weak-contrast trigger ({CONTRAST_DB} dB) to expose the trade",
        ["trigger subframes", "throughput (Kbps)"]
        + [f"P(detect) @ {level:g} dBm" for level in RX_LEVELS_DBM],
    )
    for row in rows:
        table.add_row(
            [row["n"], row["rate"] / 1e3]
            + [row["detection"][level] for level in RX_LEVELS_DBM]
        )
    print(table.render())
    print(
        "paper: a few trigger subframes cost little rate (62/64 slots "
        "remain) while making queries detectable"
    )

    # Rate cost is linear and small: 1 -> 8 triggers loses ~11% of rate.
    rates = [row["rate"] for row in rows]
    assert rates[0] > rates[-1] > 0.85 * rates[0]
    # Requiring every edge of a longer pattern lowers full-detection odds
    # at marginal signal (each edge must be seen).
    weak = RX_LEVELS_DBM[1]
    detections = [row["detection"][weak] for row in rows]
    assert all(a >= b for a, b in zip(detections, detections[1:]))
    # At strong signal everything detects.
    strong = RX_LEVELS_DBM[0]
    assert all(row["detection"][strong] > 0.99 for row in rows)
