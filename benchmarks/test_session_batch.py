"""Session-batch benchmark: three fast-path tiers on the same physics.

Runs the same LOS session through all three execution tiers — the
scalar per-subframe reference, the per-query vectorized PHY path (PR 2)
and the cross-query batched session engine — via the shared
:mod:`repro.bench` helpers, records a timestamped entry into the
``BENCH_session_batch.json`` trajectory, and asserts the batch engine's
speedup over the *vectorized* tier (an honest denominator: the memoized
query builder and the vectorized tag-alignment draws only engage inside
the session-batch engine).

The floor is ``max(2.0, 0.8 * baseline)`` where ``baseline`` is the
``speedup_session_vs_vectorized`` recorded in ``benchmarks/
baselines.json`` by ``repro bench --update-baseline``.  The vectorized
and session-batch tiers must also produce bitwise-identical
SessionStats — a slow-but-wrong batch engine fails before any timing
assert does.

Marked ``bench`` (wall-clock sensitive): excluded from the default
pytest split, run with ``pytest benchmarks/test_session_batch.py -m
bench``.  The tiny ``bench_smoke`` twin in ``tests/test_bench_smoke.py``
keeps this file's machinery exercised by tier-1.
"""

import os

import pytest

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.bench import (
    TIERS,
    bench_payload,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
)

QUERIES = 200
REPEATS = 3  # best-of-N wall clock per tier: robust to scheduler noise
DISTANCE_M = 4.0
SEED = 0

_BENCH_DIR = os.path.dirname(__file__)
_BASELINES = os.path.join(_BENCH_DIR, "baselines.json")
_TRAJECTORY = os.path.join(_BENCH_DIR, "BENCH_session_batch.json")


@pytest.mark.bench
def test_session_batch_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: three_tier_bench(
            QUERIES, distance_m=DISTANCE_M, seed=SEED, repeats=REPEATS
        ),
        rounds=1,
        iterations=1,
    )
    tiers = result["tiers"]
    speedups = result["speedups"]

    baseline_entry = load_baseline("session_batch", _BASELINES)
    baseline = (
        float(baseline_entry["speedup_session_vs_vectorized"])
        if baseline_entry
        else 2.0
    )
    floor = max(2.0, 0.8 * baseline)

    # Record the trajectory before asserting: a regression run still
    # leaves its numbers behind for the post-mortem.
    payload = bench_payload(result)
    payload["floor"] = floor
    payload["baseline_speedup_session_vs_vectorized"] = baseline
    record_bench_trajectory(_TRAJECTORY, payload)
    benchmark.extra_info["session_batch"] = payload

    print_banner(
        "session batch: scalar vs vectorized vs cross-query engine"
    )
    table = Table(
        f"{QUERIES} queries, LOS tag@{DISTANCE_M:g}m, seed {SEED}",
        ["path", "wall (s)", "queries/s", "BER"],
    )
    for label, _phy, _session in TIERS:
        tier = tiers[label]
        table.add_row(
            [label, tier["wall_s"], tier["queries_per_s"], tier["ber"]]
        )
    print(table.render())
    print(
        f"session-batch/vectorized {speedups['session_vs_vectorized']:.2f}x "
        f"(floor {floor:.2f}x from baseline {baseline:.2f}x), "
        f"session-batch/scalar {speedups['session_vs_scalar']:.2f}x"
    )

    # Correctness before speed: tiers 2 and 3 are bitwise identical —
    # same stats, same per-query BER vector, same block-ACK bitmaps.
    fast = tiers["session-batch"]["session"]
    vectorized = tiers["vectorized"]["session"]
    assert tiers["vectorized"]["stats"] == tiers["session-batch"]["stats"]
    assert vectorized.per_query_ber() == fast.per_query_ber()
    assert [r.block_ack.bitmap for r in vectorized.results] == [
        r.block_ack.bitmap for r in fast.results
    ]
    # Tier 1 shares the physics; only the coded-BER table may differ.
    assert tiers["scalar"]["stats"].queries == QUERIES
    assert (
        tiers["scalar"]["stats"].bits_sent
        == tiers["session-batch"]["stats"].bits_sent
    )
    assert abs(tiers["scalar"]["ber"] - tiers["session-batch"]["ber"]) < 0.01

    # The loud regression gate (ISSUE: >= 2x over the PR 2 vectorized
    # path, and within 20% of the recorded baseline trajectory).
    assert speedups["session_vs_vectorized"] >= floor, (
        f"session-batch engine regressed: "
        f"{speedups['session_vs_vectorized']:.2f}x < {floor:.2f}x "
        f"(baseline {baseline:.2f}x)"
    )
