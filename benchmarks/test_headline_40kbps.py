"""E7 / the paper's headline (abstract + §6.2).

"With a client and an access point that are 8 meters apart, a tag can
achieve data rates of 40 Kbps when located anywhere between the two
devices."  This bench sweeps the tag across the whole span and reports
the minimum and maximum delivered rate.
"""

from conftest import print_banner, run_point
from repro.analysis.reporting import Table
from repro.sim.scenario import los_scenario

POSITIONS_M = [0.5, 1.5, 2.5, 3.5, 4.0, 4.5, 5.5, 6.5, 7.5]


def sweep():
    rates = {}
    for d in POSITIONS_M:
        system, _ = los_scenario(d, seed=700 + int(d * 10))
        stats, _ = run_point(system, 0.6, seed=int(d * 10))
        rates[d] = stats.throughput_bps
    return rates


def test_headline_40kbps_anywhere(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner(
        "Headline: ~40 Kbps anywhere between client and AP (8 m apart)"
    )
    table = Table(
        "delivered tag throughput across the whole span",
        ["tag position (m)", "throughput (Kbps)"],
    )
    for d in POSITIONS_M:
        table.add_row([d, rates[d] / 1e3])
    print(table.render())
    low, high = min(rates.values()), max(rates.values())
    print(
        f"min {low / 1e3:.1f} Kbps, max {high / 1e3:.1f} Kbps "
        "(paper: 40 Kbps, dipping to 39 Kbps mid-span)"
    )

    assert low > 37e3, "headline rate must hold at every position"
    assert high < 46e3
    assert low > 0.9 * high, "rate must be stable across positions"
