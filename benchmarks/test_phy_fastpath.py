"""PHY fast-path benchmark: scalar reference loop vs vectorized batch.

Runs the same LOS session twice through :func:`repro.sim.scenario.
los_scenario` — once with ``phy_fast_path=False`` (per-subframe scalar
reference) and once with the vectorized batch decode — and records both
wall-clocks, queries/sec and the per-stage timing counters into the
benchmark JSON trajectory.

Unlike the engine-scaling smoke, this bench *does* assert a speedup:
the vectorized path must stay at or above ``max(3.0, 0.8 * baseline)``
where ``baseline`` is the ratio recorded in ``benchmarks/baselines.json``
when the fast path landed.  A regression below that floor fails loudly.

Both paths draw randomness in the same per-subframe order, so the two
sessions simulate the same physics; their BERs differ only through the
coded-BER interpolation table (~1e-6 outcome-flip probability per
subframe).

Marked ``bench`` (wall-clock sensitive): excluded from the default
pytest split, run with ``pytest benchmarks/test_phy_fastpath.py -m bench``.
"""

import json
import os

import numpy as np
import pytest

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.core.session import MeasurementSession
from repro.sim.scenario import los_scenario

QUERIES = 200
WARMUP_QUERIES = 10
DISTANCE_M = 4.0
SEED = 0

_BASELINES = os.path.join(os.path.dirname(__file__), "baselines.json")


def _baseline_speedup() -> float:
    with open(_BASELINES) as fh:
        return float(json.load(fh)["phy_fastpath"]["speedup"])


def _timed_session(fast: bool):
    """Build, warm up, and run one session; returns (stats, wall_s, timings)."""
    import time

    system, _info = los_scenario(
        DISTANCE_M, seed=SEED, phy_fast_path=fast
    )
    session = MeasurementSession(
        system, rng=np.random.default_rng(SEED + 1)
    )
    session.run_queries(WARMUP_QUERIES)  # warms caches/tables
    session.results.clear()  # stats aggregate results; drop the warmup
    system.counters.reset()
    system.error_model.counters.reset()
    start = time.perf_counter()
    stats = session.run_queries(QUERIES)
    wall = time.perf_counter() - start
    return stats, wall, session.stage_timings()


def both():
    return _timed_session(False), _timed_session(True)


@pytest.mark.bench
def test_phy_fastpath_speedup(benchmark):
    (scalar, parallel) = benchmark.pedantic(both, rounds=1, iterations=1)
    scalar_stats, scalar_wall, scalar_timings = scalar
    fast_stats, fast_wall, fast_timings = parallel

    scalar_qps = QUERIES / scalar_wall
    fast_qps = QUERIES / fast_wall
    speedup = scalar_wall / fast_wall
    baseline = _baseline_speedup()
    floor = max(3.0, 0.8 * baseline)

    benchmark.extra_info["phy_fastpath"] = {
        "queries": QUERIES,
        "distance_m": DISTANCE_M,
        "seed": SEED,
        "scalar_wall_s": scalar_wall,
        "vectorized_wall_s": fast_wall,
        "scalar_queries_per_s": scalar_qps,
        "vectorized_queries_per_s": fast_qps,
        "speedup": speedup,
        "baseline_speedup": baseline,
        "floor": floor,
        "scalar_ber": scalar_stats.ber,
        "vectorized_ber": fast_stats.ber,
        "vectorized_stage_timings": fast_timings,
    }

    print_banner("PHY fast path: scalar reference vs vectorized batch")
    table = Table(
        f"{QUERIES} queries, LOS tag@{DISTANCE_M:g}m, seed {SEED}",
        ["path", "wall (s)", "queries/s", "BER"],
    )
    table.add_row(["scalar", scalar_wall, scalar_qps, scalar_stats.ber])
    table.add_row(["vectorized", fast_wall, fast_qps, fast_stats.ber])
    print(table.render())
    print(
        f"speedup {speedup:.2f}x (floor {floor:.2f}x from "
        f"baseline {baseline:.2f}x)"
    )

    # Same physics both ways: the sessions ran identical query counts and
    # their BERs may differ only via the coded-BER table (~1e-3 relative
    # on success probabilities), never grossly.
    assert scalar_stats.queries == fast_stats.queries == QUERIES
    assert scalar_stats.bits_sent == fast_stats.bits_sent
    assert abs(scalar_stats.ber - fast_stats.ber) < 0.01

    # The loud regression gate (ISSUE: >= 3x, and within 20% of the
    # recorded baseline trajectory).
    assert speedup >= floor, (
        f"vectorized PHY fast path regressed: {speedup:.2f}x < "
        f"{floor:.2f}x (baseline {baseline:.2f}x)"
    )
