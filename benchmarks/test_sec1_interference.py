"""E9 / paper §1 requirement 4: non-interference, quantified.

Channel-shifting tags reflect onto an adjacent channel without carrier
sensing; a WiFi network on that channel eats the collisions.  WiTAG emits
nothing outside its own (CSMA-arbitrated) primary-channel queries.  This
bench puts numbers on the difference for a victim network as the tag's
excitation rate scales.
"""

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.baselines.interference import (
    BackscatterEmitter,
    VictimNetwork,
    channel_shift_emitter,
    collision_probability,
    victim_airtime_overhead,
    victim_goodput_fraction,
    witag_emitter,
)

QUERY_RATES = [50.0, 200.0, 600.0]


def compute():
    victim = VictimNetwork()
    rows = []
    for rate in QUERY_RATES:
        shift = channel_shift_emitter(queries_per_second=rate)
        rows.append(
            {
                "rate": rate,
                "duty": shift.duty_cycle,
                "p_collision": collision_probability(victim, shift),
                "goodput": victim_goodput_fraction(victim, shift),
                "overhead": victim_airtime_overhead(victim, shift),
            }
        )
    witag = witag_emitter()
    witag_row = {
        "p_collision": collision_probability(victim, witag),
        "goodput": victim_goodput_fraction(victim, witag),
        "overhead": victim_airtime_overhead(victim, witag),
    }
    return rows, witag_row


def test_sec1_interference(benchmark):
    rows, witag_row = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        "Section 1 requirement 4: secondary-channel interference "
        "(victim: 1.5 ms frames, 200 fps, 4 retries)"
    )
    table = Table(
        "channel-shifting tag (HitchHike/FreeRider/MOXcatter class)",
        [
            "excitations/s",
            "duty cycle",
            "P(frame collision)",
            "victim goodput",
            "airtime overhead",
        ],
    )
    for row in rows:
        table.add_row(
            [
                row["rate"],
                row["duty"],
                row["p_collision"],
                row["goodput"],
                row["overhead"],
            ]
        )
    print(table.render())
    print(
        f"WiTAG: P(collision) = {witag_row['p_collision']:g}, victim "
        f"goodput = {witag_row['goodput']:g}, airtime overhead = "
        f"{witag_row['overhead']:g} (no secondary-channel emission at all)"
    )

    # WiTAG is exactly interference-free on the secondary channel.
    assert witag_row["p_collision"] == 0.0
    assert witag_row["goodput"] == 1.0
    assert witag_row["overhead"] == 1.0
    # Channel-shift interference grows with excitation rate and is severe
    # at the rates needed for the throughputs those papers report.
    collisions = [row["p_collision"] for row in rows]
    assert all(a < b for a, b in zip(collisions, collisions[1:]))
    assert rows[-1]["p_collision"] > 0.5
    assert rows[-1]["overhead"] > 1.5
