"""Engine scaling smoke: serial vs parallel wall-clock, same bits.

Runs one small LOS sweep twice through :mod:`repro.runner` — once on
the serial executor, once on a 2-worker process pool — records both
wall-clocks (and their ratio) into the benchmark JSON trajectory, and
asserts the determinism contract: the two runs return bit-identical
values.

No speedup is *asserted*: CI may be single-core (fork + pool overhead
can even lose there), and the point of this bench is the recorded
trajectory plus the identity check, not a pass/fail race.
"""

import functools
import os

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.runner import SweepSpec, run_sweep
from repro.runner.workers import los_ber_point

DISTANCES_M = [1.0, 3.0, 5.0, 7.0]
SIM_SECONDS = 0.1
PARALLEL_WORKERS = 2


def _run(n_workers, executor):
    spec = SweepSpec(axes={"distance_m": DISTANCES_M}, seed=11)
    return run_sweep(
        functools.partial(los_ber_point, sim_seconds=SIM_SECONDS),
        spec,
        n_workers=n_workers,
        executor=executor,
    )


def both():
    serial = _run(1, "serial")
    parallel = _run(PARALLEL_WORKERS, "auto")
    return serial, parallel


def test_runner_scaling_smoke(benchmark):
    serial, parallel = benchmark.pedantic(both, rounds=1, iterations=1)

    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    benchmark.extra_info["runner_scaling"] = {
        "n_points": len(DISTANCES_M),
        "sim_seconds_per_point": SIM_SECONDS,
        "serial_wall_s": serial.wall_s,
        "parallel_wall_s": parallel.wall_s,
        "parallel_workers": parallel.n_workers,
        "parallel_executor": parallel.executor,
        "speedup": speedup,
        "cpu_count": os.cpu_count(),
    }

    print_banner("Runner scaling smoke: serial vs parallel wall-clock")
    table = Table(
        f"{len(DISTANCES_M)} points x {SIM_SECONDS:g}s sim "
        f"(cpu_count={os.cpu_count()})",
        ["executor", "workers", "wall (s)", "busy (s)"],
    )
    table.add_row(["serial", 1, serial.wall_s, serial.busy_s])
    table.add_row(
        [
            parallel.executor,
            parallel.n_workers,
            parallel.wall_s,
            parallel.busy_s,
        ]
    )
    print(table.render())
    print(f"speedup (serial/parallel): {speedup:.2f}x")

    # The determinism contract is the assertion: identical bits.
    assert serial.values == parallel.values
    assert [p.parameters for p in serial.points] == [
        p.parameters for p in parallel.points
    ]
    assert speedup > 0.0
