"""E10 / paper §5 at IQ-sample level: corruption, from first principles.

Runs the waveform-level OFDM experiment (`repro.phy.waveform`): a frame of
OFDM symbols through a channel whose tag flips its reflection phase for a
window of symbols, decoded by a receiver equalizing with the single,
preamble-time channel estimate.  Errors must land exactly in the flip
window; BPSK must resist perturbations that destroy 16-QAM — the physics
behind both the corruption mechanism and the paper's advice to use the
highest reliable query rate.
"""

import numpy as np

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.phy.waveform import run_corruption_experiment

FLIP = (8, 12)


def compute():
    return {
        "16-QAM": run_corruption_experiment(bits_per_symbol=4),
        "QPSK": run_corruption_experiment(bits_per_symbol=2),
        "BPSK": run_corruption_experiment(bits_per_symbol=1),
    }


def test_sec5_waveform_corruption(benchmark):
    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        "Section 5, IQ-sample level: per-OFDM-symbol BER, tag flips "
        f"phase for symbols {FLIP[0]}..{FLIP[1] - 1}"
    )
    table = Table(
        "stale-estimate receiver; tag path 0.25j relative to direct",
        ["symbol"] + list(profiles),
    )
    for index in range(len(next(iter(profiles.values())))):
        table.add_row(
            [index] + [profiles[name][index] for name in profiles]
        )
    print(table.render())
    print(
        "errors land exactly in the flip window; denser constellations "
        "fall first (the paper's rate-selection logic)"
    )

    for name, rates in profiles.items():
        clean = [r for i, r in enumerate(rates) if not FLIP[0] <= i < FLIP[1]]
        assert max(clean) < 0.01, f"{name} clean symbols must decode"
    # 16-QAM is corrupted; QPSK partially; BPSK resists this perturbation.
    assert np.mean(profiles["16-QAM"][FLIP[0] : FLIP[1]]) > 0.1
    assert np.mean(profiles["BPSK"][FLIP[0] : FLIP[1]]) < 0.01
    assert np.mean(profiles["16-QAM"][FLIP[0] : FLIP[1]]) >= np.mean(
        profiles["QPSK"][FLIP[0] : FLIP[1]]
    )
