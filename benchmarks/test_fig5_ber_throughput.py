"""E1 / paper Figure 5: BER and throughput vs tag distance (LOS).

Setup (paper §6.2): AP and client 8 m apart, tag on the line between them
at 1..7 m from the client; the client streams 64-subframe query A-MPDUs;
BER is measured against the known transmitted pattern and throughput is
bits delivered per second.

Expected shape: BER ~0.01 near either endpoint, peaking mid-span (the
1/(Ds^2 Dr^2) reflection minimum); throughput ~40 Kbps dipping ~1 Kbps at
mid-span.

The sweep runs through the parallel experiment engine
(:mod:`repro.runner`): each distance is one work unit, and the per-point
seeding is fixed inside the work function, so the measured numbers are
identical to the historical serial loop for any worker count.
"""

import numpy as np

from conftest import engine_workers, print_banner, run_point
from repro.analysis.reporting import Table
from repro.runner import SweepSpec, run_sweep
from repro.sim.scenario import los_scenario

DISTANCES_M = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
SIM_SECONDS = 1.0


def _fig5_point(ctx):
    """One distance point, seeded exactly as the historical serial sweep."""
    d = ctx.parameters["distance_m"]
    system, info = los_scenario(d, seed=100 + int(d))
    stats, _ = run_point(system, SIM_SECONDS, seed=int(d))
    return {
        "distance_m": d,
        "ber": stats.ber,
        "throughput_kbps": stats.throughput_bps / 1e3,
        "queries": stats.queries,
    }


def sweep(n_workers=None):
    if n_workers is None:
        n_workers = engine_workers()
    result = run_sweep(
        _fig5_point,
        SweepSpec(axes={"distance_m": DISTANCES_M}, seed=0),
        n_workers=n_workers,
    )
    return result


def test_fig5_ber_and_throughput(benchmark):
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result.values
    benchmark.extra_info["engine"] = {
        "executor": result.executor,
        "n_workers": result.n_workers,
        "chunk_size": result.chunk_size,
        "wall_s": result.wall_s,
        "busy_s": result.busy_s,
    }

    print_banner(
        "Figure 5: BER and throughput of WiTAG vs tag distance "
        "(client and AP 8 m apart)"
    )
    table = Table(
        f"{SIM_SECONDS:g}s of simulated queries per point "
        f"({result.n_workers} worker(s), {result.executor} executor)",
        ["tag distance (m)", "BER", "throughput (Kbps)", "queries"],
    )
    for row in rows:
        table.add_row(
            [
                row["distance_m"],
                row["ber"],
                row["throughput_kbps"],
                row["queries"],
            ]
        )
    print(table.render())
    print(
        "paper: BER ~0.01 at the endpoints, slightly higher mid-span; "
        "throughput 40 Kbps dipping to 39 Kbps mid-span"
    )

    bers = [row["ber"] for row in rows]
    rates = [row["throughput_kbps"] for row in rows]
    # U-shape: mid-span worst, endpoints best.
    assert bers[3] > bers[0]
    assert bers[3] > bers[6]
    assert max(bers[0], bers[6]) < 0.02
    # Throughput ~40 Kbps, stable across positions.
    assert all(37.0 < r < 46.0 for r in rates)
    assert min(rates) > 0.9 * max(rates)
