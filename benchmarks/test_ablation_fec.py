"""Ablation / paper §4.1 future work: error control for tag messages.

The paper defers error detection/correction to future work.  This bench
implements candidate schemes and measures them at the worst tag position
(mid-span, where corruption is least reliable): CRC-framed messages sent
uncoded, with bit-level FEC (repetition-3, Hamming(7,4)), and with
message-level retransmission (send the framed message twice; the reader's
CRC picks a clean copy).

Finding (and the reason it is interesting): WiTAG's errors are *bursty* —
a deep fade of the tag's reflected path kills corruption for a whole query
A-MPDU at once — so bit-level FEC, which stretches a message across more
queries and thus more burst exposure, performs *worse* than simply
retransmitting the CRC-framed message.  Error control for WiTAG should
operate at message granularity, not bit granularity.
"""

import numpy as np

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.core.decoder import TagReader
from repro.core.encoder import TagEncoder
from repro.core.fec import HammingCode, RepetitionCode
from repro.core.framing import TagMessage
from repro.sim.scenario import los_scenario

PAYLOAD = b"reading=42"
N_TRIALS = 20
TAG_POSITION_M = 4.0  # mid-span: the hardest spot (Figure 5 peak BER)


def attempt_transfer(encoder, copies, seed):
    """One transfer attempt; returns (delivered, queries_used)."""
    system, _ = los_scenario(TAG_POSITION_M, seed=seed)
    bits = TagMessage(payload=PAYLOAD).to_bits()
    for _ in range(copies):
        system.load_tag_bits(encoder.encode(bits))
    reader = TagReader(encoder=encoder)
    queries = 0
    while queries < 16:
        result = system.run_query()
        reader.ingest(result.block_ack, result.query)
        queries += 1
        if system.tag.pending_bits == 0:
            break
    delivered = any(m.payload == PAYLOAD for m in reader.messages())
    return delivered, queries


def compute():
    strategies = {
        "uncoded": (TagEncoder(), 1),
        "hamming(7,4)": (TagEncoder(fec=HammingCode()), 1),
        "repetition-3": (TagEncoder(fec=RepetitionCode(3)), 1),
        "uncoded x2 (retx)": (TagEncoder(), 2),
    }
    rows = []
    for name, (encoder, copies) in strategies.items():
        delivered = 0
        total_queries = 0
        for trial in range(N_TRIALS):
            ok, queries = attempt_transfer(encoder, copies, seed=900 + trial)
            delivered += ok
            total_queries += queries
        rows.append(
            {
                "name": name,
                "rate": encoder.efficiency / copies,
                "delivery": delivered / N_TRIALS,
                "queries": total_queries / N_TRIALS,
            }
        )
    return rows


def test_ablation_error_control_at_midspan(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        "Section 4.1 future work: error control at the worst position "
        f"(tag at {TAG_POSITION_M:g} m of 8 m)"
    )
    table = Table(
        f"{N_TRIALS} transfers of a {len(PAYLOAD)}-byte framed message",
        ["strategy", "effective rate", "P(message delivered)", "mean queries"],
    )
    for row in rows:
        table.add_row(
            [row["name"], row["rate"], row["delivery"], row["queries"]]
        )
    print(table.render())
    print(
        "finding: errors arrive as whole-query bursts (tag-path fades), "
        "so message-level\nretransmission beats bit-level FEC — WiTAG "
        "error control belongs at message granularity"
    )

    by_name = {row["name"]: row for row in rows}
    uncoded = by_name["uncoded"]["delivery"]
    # Mid-span is genuinely lossy for one-shot messages.
    assert 0.2 < uncoded < 0.95
    # Message-level redundancy is the winning strategy.
    retx = by_name["uncoded x2 (retx)"]["delivery"]
    assert retx > uncoded
    assert retx >= 0.6
    # Bit-level FEC stretches exposure across more queries...
    assert by_name["repetition-3"]["queries"] > 2.5 * by_name["uncoded"]["queries"]
    # ...and does not beat retransmission under burst errors.
    assert retx >= by_name["repetition-3"]["delivery"]
    assert retx >= by_name["hamming(7,4)"]["delivery"]
