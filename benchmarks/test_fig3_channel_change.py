"""E3 / paper Figure 3 + §5.2: channel-change techniques compared.

The paper's design insight: instead of toggling between reflecting and
non-reflecting (open/short), an always-reflecting tag that flips its
phase between 0 and 180 degrees doubles the channel change |h - h'|
(+6 dB of perturbation power), which lowers BER and extends range.

This bench measures, across tag positions: (a) the channel-change
magnitude for both designs and (b) the resulting probability that a
corrupted subframe actually fails — the quantity that becomes bit-0
reliability.

Each tag position is one work unit of the parallel experiment engine
(:mod:`repro.runner`); seeding is fixed per position inside the work
function, so values match the historical serial loop bit-for-bit at any
worker count.
"""

import numpy as np

from conftest import engine_workers, print_banner
from repro.analysis.reporting import Table
from repro.phy.channel import BackscatterChannel, ChannelGeometry, TagState
from repro.phy.error_model import LinkErrorModel
from repro.phy.mcs import ht_mcs
from repro.runner import SweepSpec, run_sweep
from repro.tag.antenna import open_short_design, phase_flip_design

DISTANCES_M = [1.0, 2.0, 4.0, 6.0, 7.0]
MPDU_BITS = 1000
N_SAMPLES = 150


def corruption_failure_probability(model, design, rng):
    """P(corrupted subframe still decodes) under fading."""
    total = 0.0
    for _ in range(N_SAMPLES):
        fading = model.sample_fading()
        total += model.subframe_success_probability(
            MPDU_BITS,
            design.state_for_bit_one,
            design.state_for_bit_zero,
            fading,
        )
    return total / N_SAMPLES


def _fig3_point(ctx):
    """Both designs at one tag position, historically-seeded."""
    d = ctx.parameters["distance_m"]
    designs = {
        "open/short": open_short_design(),
        "phase-flip": phase_flip_design(),
    }
    geometry = ChannelGeometry.on_line(8.0, d)
    channel = BackscatterChannel(
        geometry=geometry, rng=np.random.default_rng(7)
    )
    model = LinkErrorModel(
        channel=channel, mcs=ht_mcs(7), rng=np.random.default_rng(8)
    )
    row = {"distance_m": d}
    for name, design in designs.items():
        delta = channel.mean_change_magnitude(
            design.state_for_bit_one, design.state_for_bit_zero
        )
        row[f"{name}_delta"] = delta
        row[f"{name}_fail"] = corruption_failure_probability(
            model, design, np.random.default_rng(9)
        )
    return row


def sweep(n_workers=None):
    if n_workers is None:
        n_workers = engine_workers()
    return run_sweep(
        _fig3_point,
        SweepSpec(axes={"distance_m": DISTANCES_M}, seed=0),
        n_workers=n_workers,
    )


def test_fig3_channel_change_techniques(benchmark):
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result.values
    benchmark.extra_info["engine"] = {
        "executor": result.executor,
        "n_workers": result.n_workers,
        "chunk_size": result.chunk_size,
        "wall_s": result.wall_s,
        "busy_s": result.busy_s,
    }

    print_banner(
        "Figure 3 / Section 5.2: open-short vs always-reflect phase flip"
    )
    table = Table(
        "channel change |dh| and P(corruption fails) per design",
        [
            "tag dist (m)",
            "|dh| open/short",
            "|dh| phase-flip",
            "P(fail) open/short",
            "P(fail) phase-flip",
        ],
    )
    for row in rows:
        table.add_row(
            [
                row["distance_m"],
                row["open/short_delta"],
                row["phase-flip_delta"],
                row["open/short_fail"],
                row["phase-flip_fail"],
            ]
        )
    print(table.render())
    print(
        "paper: phase flip doubles |h - h'| (Figure 3 right), reducing "
        "BER and increasing range"
    )

    for row in rows:
        # The headline 2x channel change (0.9 -> 2.0 coefficient delta).
        ratio = row["phase-flip_delta"] / row["open/short_delta"]
        assert ratio == np.float64(ratio)
        assert 2.1 < ratio < 2.4
        # And it translates into more reliable corruption everywhere.
        assert row["phase-flip_fail"] <= row["open/short_fail"] + 1e-9
    # Mid-range, the improvement must be material.
    mid = rows[2]
    assert mid["phase-flip_fail"] < mid["open/short_fail"]
