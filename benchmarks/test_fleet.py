"""Fleet-engine benchmark: vectorized thousand-tag polling vs scalar.

Times the warehouse headline config through the shared
:func:`repro.bench.fleet_bench` helper: one reader polling ``N_TAGS``
tags for addressed rounds, run as the scalar
:class:`repro.core.multitag.MultiTagCell` reference loop and as the
struct-of-arrays :class:`repro.core.fleet.TagFleet` decoding each
round in chunked ``(n_tags x n_subframes)`` batch passes.

``fleet_bench`` itself runs an equivalence gate before any timing: a
small ``phy_exact_coding=True`` fleet must produce a poll round bit
for bit identical to its scalar reference cell (the full equivalence
matrix — chunk sizes, worker counts, broadcast/idle/mixed sequences —
lives in ``tests/test_fleet.py``).  This test then asserts the speedup
floor ``max(5.0, 0.8 * baseline)`` where ``baseline`` is the
``speedup_fleet_vs_scalar`` recorded in ``benchmarks/baselines.json``
by ``repro bench --fleet --update-baseline``.

Marked ``bench`` (wall-clock sensitive): excluded from the default
pytest split, run with ``pytest benchmarks/test_fleet.py -m bench``.
The tiny ``bench_smoke`` twin in ``tests/test_bench_smoke.py`` keeps
this machinery exercised by tier-1.
"""

import os

import pytest

from conftest import print_banner
from repro.analysis.reporting import Table
from repro.bench import (
    bench_payload,
    fleet_bench,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
)

N_TAGS = 2000
ROUNDS = 1
BITS_PER_TAG = 64
SEED = 0
REPEATS = 2  # best-of-N wall clock per leg: robust to scheduler noise

_BENCH_DIR = os.path.dirname(__file__)
_BASELINES = os.path.join(_BENCH_DIR, "baselines.json")
_TRAJECTORY = os.path.join(_BENCH_DIR, "BENCH_session_batch.json")


@pytest.mark.bench
@pytest.mark.fleet
def test_fleet_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: fleet_bench(
            N_TAGS,
            ROUNDS,
            seed=SEED,
            bits_per_tag=BITS_PER_TAG,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    legs = result["legs"]
    speedup = result["speedup_fleet_vs_scalar"]

    baseline_entry = load_baseline("fleet", _BASELINES)
    baseline = (
        float(baseline_entry["speedup_fleet_vs_scalar"])
        if baseline_entry
        else 5.0
    )
    floor = max(5.0, 0.8 * baseline)

    # Record the trajectory before asserting: a regression run still
    # leaves its numbers behind for the post-mortem.  The fleet block
    # rides in the shared trajectory file as a schema-3 entry; a tiny
    # three-tier run keeps the entry shape uniform with the
    # session-batch bench's entries.
    context = three_tier_bench(
        16, distance_m=4.0, seed=SEED, repeats=1
    )
    payload = bench_payload(context, fleet=result)
    payload["floor_fleet"] = floor
    payload["baseline_speedup_fleet_vs_scalar"] = baseline
    record_bench_trajectory(_TRAJECTORY, payload)
    benchmark.extra_info["fleet"] = payload["fleet"]

    print_banner(
        "fleet engine: struct-of-arrays batch polling vs scalar cell"
    )
    table = Table(
        f"{N_TAGS} tags x {ROUNDS} round(s) x {BITS_PER_TAG} bits/tag, "
        f"seed {SEED} (equivalence-gated, exact coding)",
        ["mode", "wall (s)", "queries/s"],
    )
    for mode in ("scalar", "fleet"):
        leg = legs[mode]
        table.add_row([mode, leg["wall_s"], leg["queries_per_s"]])
    print(table.render())
    print(
        f"fleet/scalar {speedup:.2f}x "
        f"(floor {floor:.2f}x from baseline {baseline:.2f}x)"
    )

    # Correctness before speed: fleet_bench already raised if the gate
    # digests diverged; restate the invariant loudly here.
    assert result["identical"], "fleet engine diverged from reference"

    # The loud regression gate (ISSUE: >= 10x measured at record time;
    # the enforced floor is max(5.0, 0.8 * recorded baseline)).
    assert speedup >= floor, (
        f"fleet engine regressed: {speedup:.2f}x < {floor:.2f}x "
        f"(baseline {baseline:.2f}x)"
    )
